package algo

import "itsim/internal/trace"

// CommDetect runs synchronous label propagation over the graph — the
// community-detection kernel GraphChi ships and the paper uses as its sixth
// general-purpose workload. Each sweep streams the CSR arrays vertex by
// vertex (sequential), reads the neighbours' labels (scattered), and writes
// the vertex's new label: more streaming than page rank (it also re-reads
// the vertex's own label block) and far more than random walk.
type CommDetect struct {
	g       *Graph
	records int
	seed    uint64

	em      emitter
	labels  []int32
	v       int
	emitted int
}

// NewCommDetect builds a label-propagation tracer producing exactly records
// accesses.
func NewCommDetect(g *Graph, records int, seed uint64) *CommDetect {
	c := &CommDetect{g: g, records: records, seed: seed}
	c.Reset()
	return c
}

// Name implements trace.Generator.
func (c *CommDetect) Name() string { return "algo_commdetect" }

// Len implements trace.Generator.
func (c *CommDetect) Len() int { return c.records }

// FootprintBytes implements trace.Generator.
func (c *CommDetect) FootprintBytes() uint64 { return c.g.FootprintBytes() }

// Reset implements trace.Generator.
func (c *CommDetect) Reset() {
	c.em.reset(c.seed)
	if c.labels == nil {
		c.labels = make([]int32, c.g.N)
	}
	for i := range c.labels {
		c.labels[i] = int32(i) // every vertex starts in its own community
	}
	c.v = 0
	c.emitted = 0
}

// Next implements trace.Generator.
func (c *CommDetect) Next(rec *trace.Record) bool {
	if c.emitted >= c.records {
		return false
	}
	for !c.em.pending() {
		c.step()
	}
	c.em.pop(rec)
	c.emitted++
	return true
}

// step propagates the most frequent neighbour label into vertex v (ties:
// smallest label — deterministic).
func (c *CommDetect) step() {
	g := c.g
	v := c.v
	c.v = (c.v + 1) % g.N
	lo, hi := g.neighbors(v)
	c.em.emit(g.rowPtrAddr(v), trace.Load, 8, 3)
	c.em.emit(g.valueAAddr(v), trace.Load, 8, 2) // own label
	span := hi - lo
	if span > 10 {
		span = 10
	}
	best := c.labels[v]
	counts := map[int32]int{}
	bestCount := 0
	for k := 0; k < span; k++ {
		e := lo + k
		c.em.emit(g.adjAddr(e), trace.Load, 4, 2) // sequential edge scan
		t := int(g.adj[e])
		c.em.emit(g.valueAAddr(t), trace.Load, 8, 4) // neighbour label (scattered)
		l := c.labels[t]
		counts[l]++
		if counts[l] > bestCount || (counts[l] == bestCount && l < best) {
			best, bestCount = l, counts[l]
		}
	}
	if best != c.labels[v] {
		c.labels[v] = best
		c.em.emit(g.valueAAddr(v), trace.Store, 8, 3) // label update
	}
}

var _ trace.Generator = (*CommDetect)(nil)
