// Package algo provides algorithm-driven trace generators: instead of
// sampling an access-pattern distribution (internal/workload's calibrated
// synthetic generators), these actually run graph algorithms — random walk,
// page rank, and a BFS-based single-source shortest path — over a synthetic
// scale-free graph laid out in CSR form in a simulated heap, and emit the
// virtual addresses the real data structures would touch.
//
// They model the paper's three data-intensive applications (GraphChi random
// walk and page rank, Graph500 SSSP) at higher fidelity than the calibrated
// profiles: the row-pointer array is streamed, adjacency lists are scanned
// sequentially, and per-vertex value arrays are hit in vertex-id order —
// which is scattered, because scale-free adjacency targets are.
//
// The calibrated generators remain the default for the paper's figures
// (EXPERIMENTS.md is calibrated against them); these are for exploration
// and for validating that the calibrated locality classes are sane.
package algo

import (
	"fmt"

	"itsim/internal/prng"
	"itsim/internal/trace"
)

// Heap layout constants. The graph lives at Base:
//
//	rowPtr  [N+1]uint64  — CSR row offsets        (8 B per vertex)
//	adj     [E]uint32    — CSR adjacency targets  (4 B per edge)
//	valueA  [N]float64   — primary per-vertex value (rank, dist, …)
//	valueB  [N]float64   — secondary per-vertex value (next rank, parent)
const (
	// Base is the graph heap's starting virtual address.
	Base = uint64(0x2000_0000)
)

// Graph is a synthetic scale-free graph in CSR layout with an explicit
// virtual-address map of its arrays.
type Graph struct {
	N      int
	rowPtr []uint32 // edge index of each vertex's first edge (len N+1)
	adj    []uint32 // concatenated adjacency targets

	rowPtrVA uint64
	adjVA    uint64
	valueAVA uint64
	valueBVA uint64
	footend  uint64
}

// Generate builds a graph of n vertices with roughly avgDeg out-edges per
// vertex. Targets follow a Zipf-like popularity (scale-free hubs), scattered
// over the id space with a bijective permutation so hub ids are not
// contiguous. Deterministic in seed.
func Generate(n, avgDeg int, seed uint64) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("algo: graph needs ≥ 2 vertices, got %d", n))
	}
	if avgDeg < 1 {
		avgDeg = 1
	}
	rng := prng.New(seed)
	g := &Graph{N: n}
	g.rowPtr = make([]uint32, n+1)
	g.adj = make([]uint32, 0, n*avgDeg)
	for v := 0; v < n; v++ {
		g.rowPtr[v] = uint32(len(g.adj))
		// Degree varies 1..2*avgDeg.
		deg := 1 + rng.Intn(2*avgDeg)
		for k := 0; k < deg; k++ {
			t := rng.Zipf(n, 0.7)
			t = int((uint64(t) * 2654435761) % uint64(n)) // scatter hubs
			if t == v {
				t = (t + 1) % n
			}
			g.adj = append(g.adj, uint32(t))
		}
	}
	g.rowPtr[n] = uint32(len(g.adj))

	g.rowPtrVA = Base
	g.adjVA = align(g.rowPtrVA+uint64(n+1)*8, 4096)
	g.valueAVA = align(g.adjVA+uint64(len(g.adj))*4, 4096)
	g.valueBVA = align(g.valueAVA+uint64(n)*8, 4096)
	g.footend = align(g.valueBVA+uint64(n)*8, 4096)
	return g
}

func align(x, a uint64) uint64 { return (x + a - 1) &^ (a - 1) }

// Edges returns the edge count.
func (g *Graph) Edges() int { return len(g.adj) }

// FootprintBytes returns the heap size from Base to the end of the arrays.
func (g *Graph) FootprintBytes() uint64 { return g.footend - Base }

// Address helpers.
func (g *Graph) rowPtrAddr(v int) uint64 { return g.rowPtrVA + uint64(v)*8 }
func (g *Graph) adjAddr(e int) uint64    { return g.adjVA + uint64(e)*4 }
func (g *Graph) valueAAddr(v int) uint64 { return g.valueAVA + uint64(v)*8 }
func (g *Graph) valueBAddr(v int) uint64 { return g.valueBVA + uint64(v)*8 }

// neighbors returns the CSR slice bounds of v's adjacency.
func (g *Graph) neighbors(v int) (lo, hi int) {
	return int(g.rowPtr[v]), int(g.rowPtr[v+1])
}

// emitter accumulates records for one algorithm step; the concrete
// generators drain it on Next.
type emitter struct {
	rng     *prng.Source
	lastDst uint8
	queue   []trace.Record
	qhead   int
}

func (e *emitter) reset(seed uint64) {
	e.rng = prng.New(seed)
	e.lastDst = 0
	e.queue = e.queue[:0]
	e.qhead = 0
}

func (e *emitter) pending() bool { return e.qhead < len(e.queue) }

func (e *emitter) pop(rec *trace.Record) {
	*rec = e.queue[e.qhead]
	e.qhead++
	if e.qhead == len(e.queue) {
		e.queue = e.queue[:0]
		e.qhead = 0
	}
}

// emit queues one access with a small random compute gap and chained
// registers (the next record's source tends to be the previous destination,
// mirroring address-generation dependencies).
func (e *emitter) emit(addr uint64, kind trace.Kind, size uint8, gapMean int) {
	gap := uint32(e.rng.Intn(gapMean+1) + e.rng.Intn(gapMean+1))
	dst := uint8(e.rng.Intn(trace.NumRegs))
	src := uint8(e.rng.Intn(trace.NumRegs))
	if e.rng.Bool(0.5) {
		src = e.lastDst
	}
	e.queue = append(e.queue, trace.Record{
		Addr: addr, Kind: kind, Size: size, Gap: gap, Dst: dst, Src: src,
	})
	if kind == trace.Load {
		e.lastDst = dst
	}
}

// RandomWalk runs w independent walkers over the graph: each step loads the
// current vertex's row pointers, one random adjacency entry, and the target
// vertex's value (read-mostly) — the canonical memory-hostile pattern.
type RandomWalk struct {
	g       *Graph
	walkers int
	records int
	seed    uint64

	em      emitter
	pos     []int
	emitted int
	turn    int
}

// NewRandomWalk builds a random-walk tracer producing exactly records
// accesses with the given walker count.
func NewRandomWalk(g *Graph, walkers, records int, seed uint64) *RandomWalk {
	if walkers < 1 {
		walkers = 1
	}
	rw := &RandomWalk{g: g, walkers: walkers, records: records, seed: seed}
	rw.Reset()
	return rw
}

// Name implements trace.Generator.
func (rw *RandomWalk) Name() string { return "algo_randomwalk" }

// Len implements trace.Generator.
func (rw *RandomWalk) Len() int { return rw.records }

// FootprintBytes implements trace.Generator.
func (rw *RandomWalk) FootprintBytes() uint64 { return rw.g.FootprintBytes() }

// Reset implements trace.Generator.
func (rw *RandomWalk) Reset() {
	rw.em.reset(rw.seed)
	rw.pos = rw.pos[:0]
	for i := 0; i < rw.walkers; i++ {
		rw.pos = append(rw.pos, rw.em.rng.Intn(rw.g.N))
	}
	rw.emitted = 0
	rw.turn = 0
}

// Next implements trace.Generator.
func (rw *RandomWalk) Next(rec *trace.Record) bool {
	if rw.emitted >= rw.records {
		return false
	}
	for !rw.em.pending() {
		rw.step()
	}
	rw.em.pop(rec)
	rw.emitted++
	return true
}

func (rw *RandomWalk) step() {
	g := rw.g
	w := rw.turn % rw.walkers
	rw.turn++
	v := rw.pos[w]
	lo, hi := g.neighbors(v)
	rw.em.emit(g.rowPtrAddr(v), trace.Load, 8, 4) // rowPtr[v], rowPtr[v+1]
	if hi <= lo {
		rw.pos[w] = rw.em.rng.Intn(g.N)
		return
	}
	e := lo + rw.em.rng.Intn(hi-lo)
	rw.em.emit(g.adjAddr(e), trace.Load, 4, 3) // adj[e]
	next := int(g.adj[e])
	rw.em.emit(g.valueAAddr(next), trace.Load, 8, 5) // value[next]
	if rw.em.rng.Bool(0.1) {
		rw.em.emit(g.valueBAddr(next), trace.Store, 8, 3) // visit counter
	}
	rw.pos[w] = next
}

// PageRank sweeps vertices in order: the row-pointer and adjacency arrays
// stream sequentially, while rank reads of adjacency targets scatter — the
// paper's page-rank locality class.
type PageRank struct {
	g       *Graph
	records int
	seed    uint64

	em      emitter
	v       int
	emitted int
}

// NewPageRank builds a page-rank tracer producing exactly records accesses.
func NewPageRank(g *Graph, records int, seed uint64) *PageRank {
	pr := &PageRank{g: g, records: records, seed: seed}
	pr.Reset()
	return pr
}

// Name implements trace.Generator.
func (pr *PageRank) Name() string { return "algo_pagerank" }

// Len implements trace.Generator.
func (pr *PageRank) Len() int { return pr.records }

// FootprintBytes implements trace.Generator.
func (pr *PageRank) FootprintBytes() uint64 { return pr.g.FootprintBytes() }

// Reset implements trace.Generator.
func (pr *PageRank) Reset() {
	pr.em.reset(pr.seed)
	pr.v = 0
	pr.emitted = 0
}

// Next implements trace.Generator.
func (pr *PageRank) Next(rec *trace.Record) bool {
	if pr.emitted >= pr.records {
		return false
	}
	for !pr.em.pending() {
		pr.step()
	}
	pr.em.pop(rec)
	pr.emitted++
	return true
}

func (pr *PageRank) step() {
	g := pr.g
	v := pr.v
	pr.v = (pr.v + 1) % g.N
	lo, hi := g.neighbors(v)
	pr.em.emit(g.rowPtrAddr(v), trace.Load, 8, 3)
	sumEdges := hi - lo
	if sumEdges > 8 {
		sumEdges = 8 // cap per-step fan-out to bound the queue
	}
	for k := 0; k < sumEdges; k++ {
		e := lo + k
		pr.em.emit(g.adjAddr(e), trace.Load, 4, 2) // sequential edge scan
		t := int(g.adj[e])
		pr.em.emit(g.valueAAddr(t), trace.Load, 8, 3) // scattered rank read
	}
	pr.em.emit(g.valueBAddr(v), trace.Store, 8, 6) // next-rank write
}

// SSSP runs BFS-style frontier expansion (a unit-weight single-source
// shortest path, the Graph500 kernel): pop a vertex, stream its adjacency,
// check-and-update scattered distance entries, push newly reached vertices.
type SSSP struct {
	g       *Graph
	records int
	seed    uint64

	em       emitter
	dist     []int32
	frontier []int32
	fhead    int
	emitted  int
	source   int
}

// NewSSSP builds an SSSP tracer producing exactly records accesses.
func NewSSSP(g *Graph, records int, seed uint64) *SSSP {
	s := &SSSP{g: g, records: records, seed: seed}
	s.Reset()
	return s
}

// Name implements trace.Generator.
func (s *SSSP) Name() string { return "algo_sssp" }

// Len implements trace.Generator.
func (s *SSSP) Len() int { return s.records }

// FootprintBytes implements trace.Generator.
func (s *SSSP) FootprintBytes() uint64 { return s.g.FootprintBytes() }

// Reset implements trace.Generator.
func (s *SSSP) Reset() {
	s.em.reset(s.seed)
	s.restart()
	s.emitted = 0
}

func (s *SSSP) restart() {
	if s.dist == nil {
		s.dist = make([]int32, s.g.N)
	}
	for i := range s.dist {
		s.dist[i] = -1
	}
	s.source = s.em.rng.Intn(s.g.N)
	s.dist[s.source] = 0
	s.frontier = append(s.frontier[:0], int32(s.source))
	s.fhead = 0
}

// Next implements trace.Generator.
func (s *SSSP) Next(rec *trace.Record) bool {
	if s.emitted >= s.records {
		return false
	}
	for !s.em.pending() {
		s.step()
	}
	s.em.pop(rec)
	s.emitted++
	return true
}

func (s *SSSP) step() {
	g := s.g
	if s.fhead >= len(s.frontier) {
		// BFS exhausted: restart from a new source (Graph500 runs many
		// roots).
		s.restart()
	}
	v := int(s.frontier[s.fhead])
	s.fhead++
	lo, hi := g.neighbors(v)
	s.em.emit(g.rowPtrAddr(v), trace.Load, 8, 3)
	d := s.dist[v]
	span := hi - lo
	if span > 12 {
		span = 12
	}
	for k := 0; k < span; k++ {
		e := lo + k
		s.em.emit(g.adjAddr(e), trace.Load, 4, 2)
		t := int(g.adj[e])
		s.em.emit(g.valueAAddr(t), trace.Load, 8, 3) // dist[t] check (scattered)
		if s.dist[t] < 0 {
			s.dist[t] = d + 1
			s.em.emit(g.valueAAddr(t), trace.Store, 8, 2) // dist[t] update
			s.frontier = append(s.frontier, int32(t))
		}
	}
}

// Compile-time interface checks.
var (
	_ trace.Generator = (*RandomWalk)(nil)
	_ trace.Generator = (*PageRank)(nil)
	_ trace.Generator = (*SSSP)(nil)
)
