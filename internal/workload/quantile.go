package workload

import (
	"sort"

	"itsim/internal/sim"
)

// QuantileTracker is a small online latency-quantile estimator over a
// sliding window of the most recent samples. The cluster's hedging layer
// uses it to derive per-tenant hedge delays ("dispatch a duplicate once
// the request has outlived the tenant's observed p99"): exact streaming
// quantiles are overkill for that, while a bounded window keeps the
// estimate adaptive to phase changes and the memory cost constant.
//
// Determinism: the estimate depends only on the sequence of Observe calls,
// so identically-seeded runs see identical hedge delays.
type QuantileTracker struct {
	win        []sim.Time
	next       int
	filled     bool
	scratch    []sim.Time
	minSamples int
}

// DefaultQuantileWindow is the sliding-window size used by NewQuantileTracker.
const DefaultQuantileWindow = 64

// DefaultQuantileMinSamples is how many samples must arrive before Ready:
// a p99 estimated from three observations would hedge almost every request.
const DefaultQuantileMinSamples = 8

// NewQuantileTracker returns a tracker over a window of n samples (n ≥ 1;
// values below minSamples disable the warm-up gate).
func NewQuantileTracker(n, minSamples int) *QuantileTracker {
	if n < 1 {
		n = 1
	}
	return &QuantileTracker{
		win:        make([]sim.Time, 0, n),
		scratch:    make([]sim.Time, 0, n),
		minSamples: minSamples,
	}
}

// Observe records one latency sample.
func (q *QuantileTracker) Observe(lat sim.Time) {
	if len(q.win) < cap(q.win) {
		q.win = append(q.win, lat)
		return
	}
	q.win[q.next] = lat
	q.next = (q.next + 1) % cap(q.win)
	q.filled = true
}

// Samples returns how many observations the window currently holds.
func (q *QuantileTracker) Samples() int { return len(q.win) }

// Ready reports whether enough samples have arrived for Quantile to be
// meaningful.
func (q *QuantileTracker) Ready() bool { return len(q.win) >= q.minSamples }

// Quantile returns the p-quantile (p in [0,1]) of the current window using
// the nearest-rank method, or 0 when the window is empty.
func (q *QuantileTracker) Quantile(p float64) sim.Time {
	n := len(q.win)
	if n == 0 {
		return 0
	}
	q.scratch = append(q.scratch[:0], q.win...)
	sort.Slice(q.scratch, func(i, j int) bool { return q.scratch[i] < q.scratch[j] })
	idx := int(p*float64(n-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return q.scratch[idx]
}
