// Package sched implements the mini kernel's process scheduler: the Linux
// real-time round-robin class (SCHED_RR) with NICE-style time slices, as in
// the paper's §4.1 setup — "the time slice allocated to the highest and
// lowest priority processes is set to 800 ms and 5 ms".
//
// Processes share one ready queue and run in round-robin order; a process's
// priority determines how long its slice is, not whether it runs (the paper
// assigns priorities randomly and still expects every process to make
// progress, with ITS's self-sacrificing thread — not the scheduler —
// responsible for yielding low-priority CPU time).
//
// The ITS priority-aware thread selection policy (§3.2) "compares the
// priority value of the current running process against the next-to-be-run
// process"; NextToRun exposes exactly that lookup.
package sched

import (
	"fmt"
	"sort"

	"itsim/internal/sim"
)

// Paper §4.1 slice bounds.
const (
	// MaxSlice is the time slice of the highest-priority process.
	MaxSlice = 800 * sim.Millisecond
	// MinSlice is the time slice of the lowest-priority process.
	MinSlice = 5 * sim.Millisecond
)

// State is a process's scheduling state.
type State uint8

// Scheduling states.
const (
	// Ready means runnable, waiting in the queue.
	Ready State = iota
	// Running means currently on the CPU.
	Running
	// Blocked means waiting for asynchronous I/O.
	Blocked
	// Finished means the trace is exhausted.
	Finished
)

// String names the state.
func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	default:
		return "finished"
	}
}

type entry struct {
	pid      int
	priority int
	state    State
	slice    sim.Time
}

// Stats counts scheduler activity.
type Stats struct {
	ContextSwitches uint64
	SliceExpiries   uint64
	Blocks          uint64
	Wakeups         uint64
}

// RR is the round-robin scheduler.
type RR struct {
	entries map[int]*entry
	// queue holds Ready pids in dispatch order.
	queue   []int
	running int // pid currently on CPU, or -1
	// priority range for slice mapping, fixed once processes are added.
	minPrio, maxPrio int
	// pinnedRange fixes the slice-mapping priority range independently of
	// the registered processes (SMP: every per-core runqueue maps against
	// the machine-global range so migration never changes a slice).
	pinnedRange  bool
	pinLo, pinHi int
	// slice range; defaults to the paper's 5 ms…800 ms. Scaled-down
	// traces scale these down with them (see machine.Config).
	minSlice, maxSlice sim.Time
	// strict selects true SCHED_RR semantics: the highest-priority ready
	// process always dispatches first, round-robin only among equals.
	// The default (false) is the paper's effective behaviour — a single
	// round-robin queue with priority-scaled slices (the NICE mechanism).
	strict bool
	stats  Stats
	// alive and ready are O(1) mirrors of the entry states: alive counts
	// entries not Finished, ready counts entries in Ready. The SMP
	// coordinator polls Alive/Runnable every step, so these must not scan
	// (the map iteration they replace dominated 4-core profiles).
	alive int
	ready int
	// observer, when set, is called on every state transition.
	observer func(pid int, from, to State)
}

// New returns an empty scheduler.
func New() *RR {
	return &RR{
		entries:  make(map[int]*entry),
		running:  -1,
		minSlice: MinSlice,
		maxSlice: MaxSlice,
	}
}

// SetObserver registers a callback invoked after every process state
// transition (the event-tracing layer hooks wake-ups through it). A nil
// observer disables notification.
func (s *RR) SetObserver(fn func(pid int, from, to State)) { s.observer = fn }

// transition applies a state change, maintains the alive/ready counters and
// notifies the observer.
func (s *RR) transition(e *entry, to State) {
	from := e.state
	e.state = to
	if from != to {
		if from == Ready {
			s.ready--
		}
		if to == Ready {
			s.ready++
		}
		if to == Finished {
			s.alive--
		}
		if s.observer != nil {
			s.observer(e.pid, from, to)
		}
	}
}

// SetStrictPriority switches dispatch to true SCHED_RR semantics: strict
// priority order, round-robin among equal priorities. An ablation knob —
// under strict priority low-priority processes starve until higher ones
// block or finish, which changes the Figure 5 dynamics substantially.
func (s *RR) SetStrictPriority(on bool) { s.strict = on }

// SetSliceRange overrides the NICE slice bounds (lowest-priority,
// highest-priority). The paper's traces run for minutes under 5 ms…800 ms
// slices; scaled-down traces preserve the rotation dynamics by scaling the
// bounds with the workload. Panics on a non-positive or inverted range.
func (s *RR) SetSliceRange(min, max sim.Time) {
	if min <= 0 || max < min {
		panic(fmt.Sprintf("sched: bad slice range [%v, %v]", min, max))
	}
	s.minSlice, s.maxSlice = min, max
	s.recomputeSlices()
}

// Add registers a process with the given priority (larger = higher
// priority) in the Ready state.
func (s *RR) Add(pid, priority int) {
	if _, dup := s.entries[pid]; dup {
		panic(fmt.Sprintf("sched: duplicate pid %d", pid))
	}
	if len(s.entries) == 0 {
		s.minPrio, s.maxPrio = priority, priority
	} else {
		if priority < s.minPrio {
			s.minPrio = priority
		}
		if priority > s.maxPrio {
			s.maxPrio = priority
		}
	}
	s.entries[pid] = &entry{pid: pid, priority: priority, state: Ready}
	s.queue = append(s.queue, pid)
	s.alive++
	s.ready++
	s.recomputeSlices()
}

// recomputeSlices maps each priority linearly onto [MinSlice, MaxSlice]
// across the priority range — the registered range by default, or the pinned
// range when SetPriorityRange fixed one (the NICE mechanism's effect).
func (s *RR) recomputeSlices() {
	lo, hi := s.minPrio, s.maxPrio
	if s.pinnedRange {
		lo, hi = s.pinLo, s.pinHi
	}
	span := hi - lo
	for _, e := range s.entries { //itslint:allow independent per-entry update; no cross-entry or output-ordering effect
		if span == 0 {
			e.slice = s.maxSlice
			continue
		}
		frac := float64(e.priority-lo) / float64(span)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		e.slice = s.minSlice + sim.Time(frac*float64(s.maxSlice-s.minSlice))
	}
}

// SetPriorityRange pins the slice-mapping priority range to [lo, hi] instead
// of the observed range of registered processes. Per-core SMP runqueues pin
// the machine-global range so every core maps priorities to slices
// identically and a migrating process keeps its slice. Panics on an inverted
// range.
func (s *RR) SetPriorityRange(lo, hi int) {
	if hi < lo {
		panic(fmt.Sprintf("sched: inverted priority range [%d, %d]", lo, hi))
	}
	s.pinnedRange = true
	s.pinLo, s.pinHi = lo, hi
	s.recomputeSlices()
}

// Priority returns pid's priority.
func (s *RR) Priority(pid int) int { return s.mustGet(pid).priority }

// SliceFor returns pid's time-slice length.
func (s *RR) SliceFor(pid int) sim.Time { return s.mustGet(pid).slice }

// StateOf returns pid's scheduling state.
func (s *RR) StateOf(pid int) State { return s.mustGet(pid).state }

// Stats returns a copy of the counters.
func (s *RR) Stats() Stats { return s.stats }

// Running returns the pid on the CPU, or -1.
func (s *RR) Running() int { return s.running }

func (s *RR) mustGet(pid int) *entry {
	e, ok := s.entries[pid]
	if !ok {
		panic(fmt.Sprintf("sched: unknown pid %d", pid))
	}
	return e
}

// PickNext dispatches the head of the ready queue, marking it Running, and
// returns its pid; -1 when nothing is runnable. The caller is responsible
// for charging context-switch time when the dispatched process differs from
// the previously running one.
func (s *RR) PickNext() int {
	if s.running != -1 {
		panic(fmt.Sprintf("sched: PickNext while pid %d is running", s.running))
	}
	if s.strict {
		if pid := s.pickStrict(); pid != -1 {
			return pid
		}
		return -1
	}
	for len(s.queue) > 0 {
		pid := s.queue[0]
		s.queue = s.queue[1:]
		e := s.entries[pid]
		if e.state != Ready {
			continue // stale queue entry (blocked/finished after enqueue)
		}
		s.transition(e, Running)
		s.running = pid
		return pid
	}
	return -1
}

// pickStrict dispatches the highest-priority Ready process, FIFO among
// equals, and compacts stale queue entries as it scans.
func (s *RR) pickStrict() int {
	best := -1
	bestIdx := -1
	for i, pid := range s.queue {
		e := s.entries[pid]
		if e.state != Ready {
			continue
		}
		if best == -1 || e.priority > s.entries[best].priority {
			best, bestIdx = pid, i
		}
	}
	if best == -1 {
		s.queue = s.queue[:0]
		return -1
	}
	s.queue = append(s.queue[:bestIdx], s.queue[bestIdx+1:]...)
	e := s.entries[best]
	s.transition(e, Running)
	s.running = best
	return best
}

// NextToRun peeks at the next process PickNext would dispatch, without
// dispatching; -1 when nothing is ready. This is the "next-to-be-run
// process" the ITS priority-aware selection policy compares against (§3.2).
func (s *RR) NextToRun() int {
	if s.strict {
		best := -1
		for _, pid := range s.queue {
			e := s.entries[pid]
			if e.state != Ready {
				continue
			}
			if best == -1 || e.priority > s.entries[best].priority {
				best = pid
			}
		}
		return best
	}
	for _, pid := range s.queue {
		if s.entries[pid].state == Ready {
			return pid
		}
	}
	return -1
}

// Runnable returns the number of Ready processes (excluding the runner).
// O(1): maintained by the state transitions, not a queue scan.
func (s *RR) Runnable() int { return s.ready }

// Alive returns the number of unfinished processes. O(1): the SMP
// coordinator calls this (via Shared.Alive) once per step, and the map
// iteration it once performed dominated multi-core wall-clock profiles.
func (s *RR) Alive() int { return s.alive }

// Expire moves the running process to the queue tail (slice exhausted).
func (s *RR) Expire(pid int) {
	e := s.mustGet(pid)
	if e.state != Running {
		panic(fmt.Sprintf("sched: Expire on %s pid %d", e.state, pid))
	}
	s.transition(e, Ready)
	s.running = -1
	s.queue = append(s.queue, pid)
	s.stats.SliceExpiries++
	s.stats.ContextSwitches++
}

// Block parks the running process waiting on I/O.
func (s *RR) Block(pid int) {
	e := s.mustGet(pid)
	if e.state != Running {
		panic(fmt.Sprintf("sched: Block on %s pid %d", e.state, pid))
	}
	s.transition(e, Blocked)
	s.running = -1
	s.stats.Blocks++
	s.stats.ContextSwitches++
}

// Unblock makes a blocked process runnable again (I/O completed), appending
// it at the queue tail.
func (s *RR) Unblock(pid int) {
	e := s.mustGet(pid)
	if e.state != Blocked {
		panic(fmt.Sprintf("sched: Unblock on %s pid %d", e.state, pid))
	}
	s.transition(e, Ready)
	s.queue = append(s.queue, pid)
	s.stats.Wakeups++
}

// Remove deregisters a Ready process (work-stealing migration: the thief
// core removes the victim from the loaded core's runqueue before re-adding
// it to its own). Only Ready processes migrate — a Blocked process's wake-up
// event lives on its owning core's clock, and a Running or Finished one has
// nothing to steal. Panics on any other state.
func (s *RR) Remove(pid int) {
	e := s.mustGet(pid)
	if e.state != Ready {
		panic(fmt.Sprintf("sched: Remove on %s pid %d", e.state, pid))
	}
	delete(s.entries, pid)
	s.alive--
	s.ready--
	for i, q := range s.queue {
		if q == pid {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
}

// Finish retires the running process permanently.
func (s *RR) Finish(pid int) {
	e := s.mustGet(pid)
	if e.state != Running {
		panic(fmt.Sprintf("sched: Finish on %s pid %d", e.state, pid))
	}
	s.transition(e, Finished)
	s.running = -1
}

// Pids returns every registered pid in ascending order. The entries map's
// iteration order must never escape the scheduler: a caller feeding these
// pids into event emission or queue construction would inherit Go's
// per-run map ordering and break bit-exact replay.
func (s *RR) Pids() []int {
	out := make([]int, 0, len(s.entries))
	for pid := range s.entries { //itslint:allow collected pids are sorted before returning
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}
