package sched

import (
	"testing"

	"itsim/internal/sim"
)

func TestAddAndSlices(t *testing.T) {
	s := New()
	s.Add(0, 1) // lowest
	s.Add(1, 6) // highest
	s.Add(2, 3)
	if got := s.SliceFor(1); got != MaxSlice {
		t.Fatalf("highest priority slice = %v, want %v", got, MaxSlice)
	}
	if got := s.SliceFor(0); got != MinSlice {
		t.Fatalf("lowest priority slice = %v, want %v", got, MinSlice)
	}
	mid := s.SliceFor(2)
	if mid <= MinSlice || mid >= MaxSlice {
		t.Fatalf("mid priority slice = %v, want strictly between", mid)
	}
}

func TestSinglePriorityGetsMaxSlice(t *testing.T) {
	s := New()
	s.Add(0, 5)
	s.Add(1, 5)
	if s.SliceFor(0) != MaxSlice || s.SliceFor(1) != MaxSlice {
		t.Fatal("uniform priorities should all get MaxSlice")
	}
}

func TestSetSliceRange(t *testing.T) {
	s := New()
	s.Add(0, 1)
	s.Add(1, 2)
	s.SetSliceRange(10*sim.Microsecond, 100*sim.Microsecond)
	if s.SliceFor(0) != 10*sim.Microsecond || s.SliceFor(1) != 100*sim.Microsecond {
		t.Fatalf("slices after SetSliceRange: %v %v", s.SliceFor(0), s.SliceFor(1))
	}
}

func TestSetSliceRangePanicsOnBadRange(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("inverted range accepted")
		}
	}()
	s.SetSliceRange(100, 10)
}

func TestDuplicatePIDPanics(t *testing.T) {
	s := New()
	s.Add(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate pid accepted")
		}
	}()
	s.Add(0, 2)
}

func TestRoundRobinOrder(t *testing.T) {
	s := New()
	s.Add(0, 1)
	s.Add(1, 2)
	s.Add(2, 3)
	var order []int
	for i := 0; i < 6; i++ {
		pid := s.PickNext()
		order = append(order, pid)
		s.Expire(pid)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

func TestPickNextWhileRunningPanics(t *testing.T) {
	s := New()
	s.Add(0, 1)
	s.PickNext()
	defer func() {
		if recover() == nil {
			t.Fatal("PickNext while running accepted")
		}
	}()
	s.PickNext()
}

func TestBlockUnblock(t *testing.T) {
	s := New()
	s.Add(0, 1)
	s.Add(1, 2)
	pid := s.PickNext()
	s.Block(pid)
	if s.StateOf(pid) != Blocked {
		t.Fatalf("state = %v", s.StateOf(pid))
	}
	// Only pid 1 runnable.
	if got := s.PickNext(); got != 1 {
		t.Fatalf("PickNext = %d, want 1", got)
	}
	s.Expire(1)
	s.Unblock(0)
	// Queue: [1 (expired first), 0 (just woken)].
	if got := s.PickNext(); got != 1 {
		t.Fatalf("PickNext = %d, want 1 (FIFO)", got)
	}
	s.Expire(1)
	if got := s.PickNext(); got != 0 {
		t.Fatalf("PickNext = %d, want 0", got)
	}
}

func TestUnblockNotBlockedPanics(t *testing.T) {
	s := New()
	s.Add(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Unblock of ready process accepted")
		}
	}()
	s.Unblock(0)
}

func TestFinish(t *testing.T) {
	s := New()
	s.Add(0, 1)
	s.Add(1, 2)
	if s.Alive() != 2 {
		t.Fatalf("Alive = %d", s.Alive())
	}
	pid := s.PickNext()
	s.Finish(pid)
	if s.Alive() != 1 || s.StateOf(pid) != Finished {
		t.Fatalf("after Finish: alive=%d state=%v", s.Alive(), s.StateOf(pid))
	}
	// Finished process never dispatched again.
	for i := 0; i < 3; i++ {
		got := s.PickNext()
		if got == pid {
			t.Fatal("finished process dispatched")
		}
		if got == -1 {
			break
		}
		s.Expire(got)
	}
}

func TestNextToRunSkipsStaleEntries(t *testing.T) {
	s := New()
	s.Add(0, 1)
	s.Add(1, 2)
	pid := s.PickNext() // 0 running
	if got := s.NextToRun(); got != 1 {
		t.Fatalf("NextToRun = %d, want 1", got)
	}
	s.Block(pid)
	// Pick 1, then nothing runnable.
	if got := s.PickNext(); got != 1 {
		t.Fatalf("PickNext = %d", got)
	}
	if got := s.NextToRun(); got != -1 {
		t.Fatalf("NextToRun = %d, want -1", got)
	}
	if s.Runnable() != 0 {
		t.Fatalf("Runnable = %d", s.Runnable())
	}
}

func TestEmptyPick(t *testing.T) {
	s := New()
	if s.PickNext() != -1 {
		t.Fatal("PickNext on empty scheduler != -1")
	}
}

func TestStats(t *testing.T) {
	s := New()
	s.Add(0, 1)
	s.Add(1, 2)
	p := s.PickNext()
	s.Expire(p)
	p = s.PickNext()
	s.Block(p)
	s.Unblock(p)
	st := s.Stats()
	if st.SliceExpiries != 1 || st.Blocks != 1 || st.Wakeups != 1 || st.ContextSwitches != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPriorityAndPids(t *testing.T) {
	s := New()
	s.Add(7, 42)
	if s.Priority(7) != 42 {
		t.Fatal("Priority wrong")
	}
	if got := s.Pids(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Pids = %v", got)
	}
}

func TestStateString(t *testing.T) {
	if Ready.String() != "ready" || Running.String() != "running" ||
		Blocked.String() != "blocked" || Finished.String() != "finished" {
		t.Fatal("State strings wrong")
	}
}

func TestStrictPriorityDispatch(t *testing.T) {
	s := New()
	s.SetStrictPriority(true)
	s.Add(0, 1)
	s.Add(1, 3)
	s.Add(2, 2)
	if got := s.NextToRun(); got != 1 {
		t.Fatalf("NextToRun = %d, want highest-priority 1", got)
	}
	if got := s.PickNext(); got != 1 {
		t.Fatalf("PickNext = %d, want 1", got)
	}
	s.Block(1)
	if got := s.PickNext(); got != 2 {
		t.Fatalf("PickNext = %d, want 2 (next priority)", got)
	}
	s.Expire(2)
	s.Unblock(1)
	// 1 is ready again and outranks 0 and 2.
	if got := s.PickNext(); got != 1 {
		t.Fatalf("PickNext after wake = %d, want 1", got)
	}
}

func TestStrictPriorityFIFOAmongEquals(t *testing.T) {
	s := New()
	s.SetStrictPriority(true)
	s.Add(0, 5)
	s.Add(1, 5)
	s.Add(2, 5)
	var order []int
	for i := 0; i < 6; i++ {
		pid := s.PickNext()
		order = append(order, pid)
		s.Expire(pid)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("equal-priority order %v, want %v", order, want)
		}
	}
}

func TestStrictPriorityEmpty(t *testing.T) {
	s := New()
	s.SetStrictPriority(true)
	s.Add(0, 1)
	pid := s.PickNext()
	s.Block(pid)
	if s.PickNext() != -1 || s.NextToRun() != -1 {
		t.Fatal("strict scheduler found work with everyone blocked")
	}
	s.Unblock(0)
	if s.PickNext() != 0 {
		t.Fatal("strict scheduler lost the woken process")
	}
}
