package pagetable

import "testing"

func TestMapHugeAndLookup(t *testing.T) {
	a := New()
	base := uint64(4 << 20) // 2 MiB aligned
	a.MapHuge(base+12345, FlagPresent.WithFrame(77))
	// Any base address inside the region resolves to the huge PTE.
	for _, va := range []uint64{base, base + PageSize, base + HugePageSize - 1} {
		pte, levels, ok := a.Walk(va)
		if !ok || !pte.Huge() || !pte.Present() || pte.Frame() != 77 {
			t.Fatalf("Walk(%#x) = %v,%d,%v", va, pte, levels, ok)
		}
		if levels != 3 {
			t.Fatalf("huge walk took %d levels, want 3 (ends at PMD)", levels)
		}
	}
	// Outside the region: unmapped.
	if _, ok := a.Lookup(base + HugePageSize); ok {
		t.Fatal("huge mapping leaked past its region")
	}
	if _, ok := a.Lookup(base - 1); ok {
		t.Fatal("huge mapping leaked before its region")
	}
	hp, ok := a.LookupHuge(base + 999)
	if !ok || hp.Frame() != 77 {
		t.Fatalf("LookupHuge = %v, %v", hp, ok)
	}
}

func TestMapHugeCounters(t *testing.T) {
	a := New()
	a.MapHuge(0, FlagPresent.WithFrame(1))
	if a.MappedPages() != EntriesPerTable || a.PresentPages() != EntriesPerTable {
		t.Fatalf("counters %d/%d, want 512/512", a.MappedPages(), a.PresentPages())
	}
	a.MapHuge(HugePageSize, FlagSwapped.WithFrame(2))
	if a.MappedPages() != 2*EntriesPerTable || a.PresentPages() != EntriesPerTable {
		t.Fatalf("counters %d/%d after swapped huge", a.MappedPages(), a.PresentPages())
	}
	// Remapping the same region does not double count.
	a.MapHuge(HugePageSize+5, FlagPresent.WithFrame(3))
	if a.MappedPages() != 2*EntriesPerTable || a.PresentPages() != 2*EntriesPerTable {
		t.Fatalf("counters %d/%d after remap", a.MappedPages(), a.PresentPages())
	}
}

func TestSplitHuge(t *testing.T) {
	a := New()
	base := uint64(2 << 20)
	a.MapHuge(base, FlagPresent.WithFrame(1000))
	ok := a.SplitHuge(base+777, func(i int) PTE {
		return FlagPresent.WithFrame(uint64(2000 + i))
	})
	if !ok {
		t.Fatal("SplitHuge missed the mapping")
	}
	// Counters unchanged: 512 present pages before and after.
	if a.PresentPages() != EntriesPerTable || a.MappedPages() != EntriesPerTable {
		t.Fatalf("counters %d/%d after split", a.PresentPages(), a.MappedPages())
	}
	// Base pages resolve individually now, via a full 4-level walk.
	pte, levels, ok := a.Walk(base + 5*PageSize)
	if !ok || levels != Levels || pte.Huge() || pte.Frame() != 2005 {
		t.Fatalf("post-split walk = %v,%d,%v", pte, levels, ok)
	}
	// Splitting again reports no huge mapping.
	if a.SplitHuge(base, func(int) PTE { return 0 }) {
		t.Fatal("second split succeeded")
	}
}

func TestMapHugeOverBasePagesPanics(t *testing.T) {
	a := New()
	a.MapSwapped(0x1000, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("MapHuge over base pages accepted")
		}
	}()
	a.MapHuge(0, FlagPresent.WithFrame(1))
}

func TestBaseAccessUnderHugePanics(t *testing.T) {
	a := New()
	a.MapHuge(0, FlagPresent.WithFrame(1))
	defer func() {
		if recover() == nil {
			t.Fatal("base-page Set under huge mapping accepted")
		}
	}()
	a.MapSwapped(0x3000, 9)
}

func TestVisitFromCoversHugeMappingInOneStep(t *testing.T) {
	a := New()
	// Layout: one base page, then a huge region, then another base page.
	a.MapSwapped(HugePageSize-PageSize, 1)
	a.MapHuge(HugePageSize, FlagSwapped.WithFrame(42))
	a.MapSwapped(2*HugePageSize, 2)
	var steps []WalkStep
	visited, _ := a.VisitFrom(HugePageSize-PageSize, 600, func(s WalkStep) bool {
		if s.PTE.Mapped() {
			steps = append(steps, s)
		}
		return len(steps) < 3
	})
	if len(steps) != 3 {
		t.Fatalf("visited %d mapped steps (total %d): %+v", len(steps), visited, steps)
	}
	if !steps[1].PTE.Huge() || steps[1].VA != HugePageSize {
		t.Fatalf("huge step = %+v", steps[1])
	}
	if steps[2].VA != 2*HugePageSize {
		t.Fatalf("walker did not jump the huge region: %+v", steps[2])
	}
	// The 2 MiB region cost one visit, not 512.
	if visited > 520 {
		t.Fatalf("visited %d steps; huge region not skipped as a unit", visited)
	}
}
