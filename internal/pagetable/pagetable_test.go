package pagetable

import (
	"testing"
	"testing/quick"
)

func TestPTEBits(t *testing.T) {
	var p PTE
	if p.Mapped() || p.Present() || p.Swapped() || p.Dirty() || p.INV() {
		t.Fatal("zero PTE has bits set")
	}
	p = FlagPresent | FlagDirty
	if !p.Present() || !p.Dirty() || p.Swapped() {
		t.Fatal("flag accessors wrong")
	}
	p = p.WithFrame(0x12345)
	if p.Frame() != 0x12345 {
		t.Fatalf("Frame = %#x, want 0x12345", p.Frame())
	}
	if !p.Present() || !p.Dirty() {
		t.Fatal("WithFrame clobbered flags")
	}
	p = p.WithFrame(0x7)
	if p.Frame() != 0x7 {
		t.Fatalf("frame replacement failed: %#x", p.Frame())
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(frame uint64, flags uint8) bool {
		frame &= (1 << (VABits - PageShift)) - 1
		p := PTE(flags & 0x1F).WithFrame(frame)
		return p.Frame() == frame
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSetAndLookup(t *testing.T) {
	a := New()
	const va = uint64(0x1234_5000)
	if _, ok := a.Lookup(va); ok {
		t.Fatal("lookup on empty space succeeded")
	}
	a.MapSwapped(va, 99)
	pte, ok := a.Lookup(va)
	if !ok || !pte.Swapped() || pte.Frame() != 99 {
		t.Fatalf("after MapSwapped: %v ok=%v", pte, ok)
	}
	if a.MappedPages() != 1 || a.PresentPages() != 0 {
		t.Fatalf("counters: mapped=%d present=%d", a.MappedPages(), a.PresentPages())
	}
}

func TestMakePresentAndSwapped(t *testing.T) {
	a := New()
	const va = uint64(0x4000_0000)
	a.MapSwapped(va, 7)
	prev := a.MakePresent(va, 42)
	if !prev.Swapped() || prev.Frame() != 7 {
		t.Fatalf("MakePresent returned prev %v", prev)
	}
	pte, _ := a.Lookup(va)
	if !pte.Present() || pte.Swapped() || pte.Frame() != 42 || !pte.Accessed() {
		t.Fatalf("after MakePresent: %v", pte)
	}
	if a.PresentPages() != 1 {
		t.Fatalf("PresentPages = %d", a.PresentPages())
	}
	prev = a.MakeSwapped(va, 8)
	if !prev.Present() || prev.Frame() != 42 {
		t.Fatalf("MakeSwapped returned prev %v", prev)
	}
	pte, _ = a.Lookup(va)
	if !pte.Swapped() || pte.Present() || pte.Frame() != 8 || pte.Dirty() || pte.INV() {
		t.Fatalf("after MakeSwapped: %v", pte)
	}
	if a.PresentPages() != 0 || a.MappedPages() != 1 {
		t.Fatalf("counters after swap-out: present=%d mapped=%d", a.PresentPages(), a.MappedPages())
	}
}

func TestMakePresentPreservesINV(t *testing.T) {
	a := New()
	const va = uint64(0x1000)
	a.MapSwapped(va, 1)
	a.Update(va, func(p PTE) PTE { return p | FlagINV })
	a.MakePresent(va, 5)
	pte, _ := a.Lookup(va)
	if !pte.INV() {
		t.Fatal("MakePresent cleared INV")
	}
	// Eviction clears INV (fresh copy comes from storage next time).
	a.MakeSwapped(va, 2)
	pte, _ = a.Lookup(va)
	if pte.INV() {
		t.Fatal("MakeSwapped kept INV")
	}
}

func TestUnmapViaSetZero(t *testing.T) {
	a := New()
	a.MapSwapped(0x2000, 3)
	a.Set(0x2000, 0)
	if _, ok := a.Lookup(0x2000); ok {
		t.Fatal("zero PTE still mapped")
	}
	if a.MappedPages() != 0 {
		t.Fatalf("MappedPages = %d", a.MappedPages())
	}
}

func TestWalkLevels(t *testing.T) {
	a := New()
	// Absent at PGD level: 1 level traversed.
	if _, levels, ok := a.Walk(0xdead_beef_000); ok || levels != 1 {
		t.Fatalf("empty walk: levels=%d ok=%v", levels, ok)
	}
	a.MapSwapped(0xdead_beef_000, 1)
	pte, levels, ok := a.Walk(0xdead_beef_000)
	if !ok || levels != Levels || !pte.Swapped() {
		t.Fatalf("full walk: levels=%d ok=%v pte=%v", levels, ok, pte)
	}
}

func TestDistinctVAsDoNotCollide(t *testing.T) {
	a := New()
	// VAs differing only at each level's index bits.
	vas := []uint64{
		0x0000_0000_1000,
		0x0000_0020_1000, // different PT... actually different PMD index
		0x0000_4000_1000,
		0x0080_0000_1000,
		0x8000_0000_1000,
	}
	for i, va := range vas {
		a.MapSwapped(va, uint64(100+i))
	}
	for i, va := range vas {
		pte, ok := a.Lookup(va)
		if !ok || pte.Frame() != uint64(100+i) {
			t.Fatalf("va %#x: pte=%v ok=%v", va, pte, ok)
		}
	}
	if a.MappedPages() != len(vas) {
		t.Fatalf("MappedPages = %d, want %d", a.MappedPages(), len(vas))
	}
}

func TestTablesAllocatedLazily(t *testing.T) {
	a := New()
	if a.TablesAllocated() != 1 {
		t.Fatalf("fresh space has %d tables, want 1 (PGD)", a.TablesAllocated())
	}
	a.MapSwapped(0x1000, 1)
	if a.TablesAllocated() != 4 {
		t.Fatalf("one mapping allocated %d tables, want 4", a.TablesAllocated())
	}
	a.MapSwapped(0x2000, 2) // same PT
	if a.TablesAllocated() != 4 {
		t.Fatalf("same-PT mapping allocated extra tables: %d", a.TablesAllocated())
	}
	a.MapSwapped(1<<30, 3) // different PUD subtree
	if a.TablesAllocated() != 6 {
		t.Fatalf("cross-PUD mapping: %d tables, want 6", a.TablesAllocated())
	}
}

func TestVisitFromAscending(t *testing.T) {
	a := New()
	base := uint64(0x10_0000)
	for i := uint64(0); i < 20; i++ {
		a.MapSwapped(base+i*PageSize, i)
	}
	var got []uint64
	visited, tables := a.VisitFrom(base, 20, func(s WalkStep) bool {
		got = append(got, s.VA)
		return true
	})
	if visited != 20 || tables < 2 {
		t.Fatalf("visited=%d tables=%d", visited, tables)
	}
	for i, va := range got {
		if va != base+uint64(i)*PageSize {
			t.Fatalf("step %d = %#x, want %#x", i, va, base+uint64(i)*PageSize)
		}
	}
}

func TestVisitFromStopsOnFalse(t *testing.T) {
	a := New()
	base := uint64(0x10_0000)
	for i := uint64(0); i < 10; i++ {
		a.MapSwapped(base+i*PageSize, i)
	}
	count := 0
	visited, _ := a.VisitFrom(base, 100, func(WalkStep) bool {
		count++
		return count < 3
	})
	if visited != 3 || count != 3 {
		t.Fatalf("visited=%d count=%d, want 3", visited, count)
	}
}

func TestVisitFromCrossesPTBoundary(t *testing.T) {
	a := New()
	// Map pages straddling a 2 MiB (PT table) boundary.
	boundary := uint64(2 << 20)
	a.MapSwapped(boundary-PageSize, 1)
	a.MapSwapped(boundary, 2)
	a.MapSwapped(boundary+PageSize, 3)
	var got []uint64
	a.VisitFrom(boundary-PageSize, 3, func(s WalkStep) bool {
		if s.PTE.Mapped() {
			got = append(got, s.VA)
		}
		return true
	})
	if len(got) != 3 {
		t.Fatalf("crossed-boundary visit got %d mapped pages, want 3: %#v", len(got), got)
	}
}

func TestVisitFromSkipsHoles(t *testing.T) {
	a := New()
	// Two mapped clusters separated by a 1 GiB hole.
	lo := uint64(0x10_0000)
	hi := lo + (1 << 30)
	a.MapSwapped(lo, 1)
	a.MapSwapped(hi, 2)
	var got []uint64
	// The walker scans the remaining entries of lo's leaf table one PTE at
	// a time (the paper's pte_offset() loop), then hops absent subtrees
	// structurally. Reaching hi therefore takes < ~600 visits, not the
	// 262144 a page-wise walk of the 1 GiB hole would need.
	visited, _ := a.VisitFrom(lo, 2000, func(s WalkStep) bool {
		if s.PTE.Mapped() {
			got = append(got, s.VA)
		}
		return len(got) < 2
	})
	if len(got) != 2 {
		t.Fatalf("hole skip failed: got %v (visited %d)", got, visited)
	}
	if got[0] != lo || got[1] != hi {
		t.Fatalf("wrong pages: %#v", got)
	}
	if visited > 1100 {
		t.Fatalf("visited %d pages; hole not skipped table-wise", visited)
	}
}

func TestVisitFromRespectsMaxPages(t *testing.T) {
	a := New()
	base := uint64(0)
	for i := uint64(0); i < 600; i++ {
		a.MapSwapped(base+i*PageSize, i)
	}
	visited, _ := a.VisitFrom(base, 100, func(WalkStep) bool { return true })
	if visited != 100 {
		t.Fatalf("visited = %d, want 100", visited)
	}
}

func TestCountersProperty(t *testing.T) {
	// Property: present ≤ mapped, and both match the set of operations.
	f := func(ops []uint16) bool {
		a := New()
		state := map[uint64]int{} // 0 unmapped, 1 swapped, 2 present
		for _, op := range ops {
			va := uint64(op%64) * PageSize
			switch op % 3 {
			case 0:
				a.MapSwapped(va, uint64(op))
				state[va] = 1
			case 1:
				if state[va] != 0 {
					a.MakePresent(va, uint64(op%1024))
					state[va] = 2
				}
			case 2:
				if state[va] == 2 {
					a.MakeSwapped(va, uint64(op))
					state[va] = 1
				}
			}
		}
		mapped, present := 0, 0
		for _, s := range state {
			if s > 0 {
				mapped++
			}
			if s == 2 {
				present++
			}
		}
		return a.MappedPages() == mapped && a.PresentPages() == present
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
