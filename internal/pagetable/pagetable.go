// Package pagetable implements the 4-level x86_64-style page table of the
// paper's mini Linux-based kernel: PGD → PUD → PMD → PT, 512 entries per
// level, 4 KiB pages, 48-bit canonical virtual addresses.
//
// Each leaf PTE carries the control bits the ITS design relies on:
//
//   - Present  — the page is resident in DRAM (paper §3.1 step 3).
//   - Swapped  — the page is mapped but lives in the ULL swap device; its
//     swap-slot number occupies the frame field.
//   - Dirty/Accessed — standard bookkeeping used by the CLOCK replacement
//     policy in internal/mem.
//   - INV      — the repurposed spare control bit the fault-aware
//     pre-execute policy uses to mark pages holding bogus data (§3.4.2).
//
// The package also provides the iterative "walk forward in virtual address
// space" traversal of §3.4.1 (VisitFrom): starting at the victim page the
// walker increments the PT offset, and when a page table is exhausted moves
// to the next PMD entry's table, exactly as the paper's prefetcher does with
// pte_offset()/pmd_offset().
package pagetable

import "fmt"

// Geometry constants of the 4-level x86_64 layout.
const (
	// PageShift is log2 of the page size.
	PageShift = 12
	// PageSize is the page size in bytes.
	PageSize = 1 << PageShift
	// EntriesPerTable is the fan-out at every level.
	EntriesPerTable = 512
	// Levels is the number of table levels (PGD, PUD, PMD, PT).
	Levels = 4
	// VABits is the canonical virtual-address width.
	VABits = 48
)

// PTE control bits. The physical frame number (or swap slot when Swapped)
// lives in bits 12..47, matching the paper's "physical address located
// between bit positions 12 and 48 in the PT entry".
type PTE uint64

// PTE flag bits.
const (
	FlagPresent  PTE = 1 << 0
	FlagDirty    PTE = 1 << 1
	FlagAccessed PTE = 1 << 2
	// FlagINV is the repurposed spare control bit carrying the pre-execute
	// engine's invalid mark (paper §3.4.2).
	FlagINV PTE = 1 << 3
	// FlagSwapped marks a mapped page whose contents are in the ULL swap
	// device; the frame field then holds the swap slot.
	FlagSwapped PTE = 1 << 4

	frameShift = PageShift
	frameMask  = (PTE(1)<<(VABits-PageShift) - 1) << frameShift
)

// Present reports the Present bit.
func (p PTE) Present() bool { return p&FlagPresent != 0 }

// Swapped reports the Swapped bit.
func (p PTE) Swapped() bool { return p&FlagSwapped != 0 }

// Dirty reports the Dirty bit.
func (p PTE) Dirty() bool { return p&FlagDirty != 0 }

// Accessed reports the Accessed bit.
func (p PTE) Accessed() bool { return p&FlagAccessed != 0 }

// INV reports the pre-execute invalid bit.
func (p PTE) INV() bool { return p&FlagINV != 0 }

// Mapped reports whether the PTE refers to any page at all (present or
// swapped); a zero PTE is an unmapped hole.
func (p PTE) Mapped() bool { return p&(FlagPresent|FlagSwapped) != 0 }

// Frame returns the physical frame number (or swap slot when Swapped).
func (p PTE) Frame() uint64 { return uint64(p&frameMask) >> frameShift }

// WithFrame returns p with the frame field replaced.
func (p PTE) WithFrame(frame uint64) PTE {
	return (p &^ frameMask) | (PTE(frame)<<frameShift)&frameMask
}

// String renders the PTE for debugging.
func (p PTE) String() string {
	return fmt.Sprintf("PTE{frame=%#x present=%t swapped=%t dirty=%t acc=%t inv=%t}",
		p.Frame(), p.Present(), p.Swapped(), p.Dirty(), p.Accessed(), p.INV())
}

// levelShift returns the VA bit shift for table level l (0 = PGD).
func levelShift(l int) uint { return uint(PageShift + 9*(Levels-1-l)) }

// indexAt extracts the table index for va at level l.
func indexAt(va uint64, l int) int {
	return int((va >> levelShift(l)) & (EntriesPerTable - 1))
}

// node is one 512-entry table. Directory levels use kids; the leaf level
// (PT) uses ptes. Tables allocate lazily.
type node struct {
	kids []*node
	ptes []PTE
	// huge holds PMD-level 2 MiB leaf mappings (see huge.go); allocated
	// lazily, only on PMD-level nodes.
	huge []PTE
}

// AddressSpace is one process's page-table tree plus occupancy counters
// (the kernel's mm_struct analogue holds the pgd base pointer; here the
// AddressSpace is handed around directly).
type AddressSpace struct {
	root    node
	mapped  int
	present int
	// tablesAllocated counts leaf+directory tables, exposed for memory
	// overhead accounting and tests.
	tablesAllocated int
	// lookPT/lookTag cache the leaf table of the last successful Lookup
	// descent (tag = va >> leafShift), mirroring a hardware paging-
	// structure cache: Lookup runs once per simulated memory access, and
	// sequential streams stay inside one 2 MiB leaf for thousands of
	// records. Leaf tables are never freed or reallocated and Set writes
	// through the same slice, so the only staleness hazard is a huge-page
	// mapping appearing at the PMD level — MapHuge and SplitHuge drop the
	// cache. Walk bypasses it: its level count feeds the timing model.
	lookPT  []PTE
	lookTag uint64
}

// leafShift is the VA shift selecting a leaf table (one 2 MiB reach).
const leafShift = PageShift + 9

// New returns an empty address space.
func New() *AddressSpace {
	a := &AddressSpace{}
	a.root.kids = make([]*node, EntriesPerTable)
	a.tablesAllocated = 1
	return a
}

// MappedPages returns the number of mapped (present or swapped) pages.
func (a *AddressSpace) MappedPages() int { return a.mapped }

// PresentPages returns the number of resident pages.
func (a *AddressSpace) PresentPages() int { return a.present }

// TablesAllocated returns how many 512-entry tables exist.
func (a *AddressSpace) TablesAllocated() int { return a.tablesAllocated }

func canonical(va uint64) uint64 { return va & (1<<VABits - 1) }

// Walk looks up va without allocating. It returns the PTE, the number of
// table levels traversed (1..4 — the MMU/prefetcher timing model charges one
// memory access per level), and whether a leaf entry exists.
func (a *AddressSpace) Walk(va uint64) (pte PTE, levels int, ok bool) {
	va = canonical(va)
	n := &a.root
	for l := 0; l < Levels-1; l++ {
		levels++
		if l == 2 && n.huge != nil {
			if hp := n.huge[indexAt(va, 2)]; hp != 0 {
				// PMD-level huge mapping: the walk ends a level early.
				return hp, levels, true
			}
		}
		next := n.kids[indexAt(va, l)]
		if next == nil {
			return 0, levels, false
		}
		n = next
	}
	levels++
	p := n.ptes[indexAt(va, Levels-1)]
	if p == 0 {
		return 0, levels, false
	}
	return p, levels, true
}

// Lookup is Walk without the cost detail.
func (a *AddressSpace) Lookup(va uint64) (PTE, bool) {
	va = canonical(va)
	if a.lookPT != nil && va>>leafShift == a.lookTag {
		p := a.lookPT[indexAt(va, Levels-1)]
		return p, p != 0
	}
	return a.lookupSlow(va)
}

// lookupSlow is the full descent behind Lookup's leaf cache; it seats the
// cache whenever it reaches a leaf table. va is already canonical.
func (a *AddressSpace) lookupSlow(va uint64) (PTE, bool) {
	n := &a.root
	for l := 0; l < Levels-1; l++ {
		if l == 2 && n.huge != nil {
			if hp := n.huge[indexAt(va, 2)]; hp != 0 {
				return hp, true
			}
		}
		next := n.kids[indexAt(va, l)]
		if next == nil {
			return 0, false
		}
		n = next
	}
	a.lookPT = n.ptes
	a.lookTag = va >> leafShift
	p := n.ptes[indexAt(va, Levels-1)]
	return p, p != 0
}

// entry returns a pointer to the leaf PTE for va, allocating intermediate
// tables as needed.
func (a *AddressSpace) entry(va uint64) *PTE {
	va = canonical(va)
	n := &a.root
	for l := 0; l < Levels-1; l++ {
		idx := indexAt(va, l)
		if l == 2 && n.huge != nil && n.huge[idx] != 0 {
			panic(fmt.Sprintf("pagetable: base-page access under huge mapping at %#x (SplitHuge first)", va))
		}
		next := n.kids[idx]
		if next == nil {
			next = &node{}
			if l == Levels-2 {
				next.ptes = make([]PTE, EntriesPerTable)
			} else {
				next.kids = make([]*node, EntriesPerTable)
			}
			n.kids[idx] = next
			a.tablesAllocated++
		}
		n = next
	}
	return &n.ptes[indexAt(va, Levels-1)]
}

// Set installs pte for va, maintaining the mapped/present counters. Setting
// a zero PTE unmaps the page.
func (a *AddressSpace) Set(va uint64, pte PTE) {
	e := a.entry(va)
	old := *e
	if old.Mapped() {
		a.mapped--
	}
	if old.Present() {
		a.present--
	}
	*e = pte
	if pte.Mapped() {
		a.mapped++
	}
	if pte.Present() {
		a.present++
	}
}

// Update applies fn to the PTE for va (allocating the path) and maintains
// counters. fn receives the current value and returns the new one.
func (a *AddressSpace) Update(va uint64, fn func(PTE) PTE) PTE {
	e := a.entry(va)
	old := *e
	nw := fn(old)
	if old.Mapped() {
		a.mapped--
	}
	if old.Present() {
		a.present--
	}
	*e = nw
	if nw.Mapped() {
		a.mapped++
	}
	if nw.Present() {
		a.present++
	}
	return nw
}

// MapSwapped maps va as swapped-out with the given swap slot (the state a
// page starts in before its first major fault, and returns to on eviction).
func (a *AddressSpace) MapSwapped(va uint64, slot uint64) {
	a.Set(va, (FlagSwapped).WithFrame(slot))
}

// MakePresent transitions va to resident in physical frame, preserving the
// INV bit and clearing Swapped. It returns the previous PTE.
func (a *AddressSpace) MakePresent(va uint64, frame uint64) PTE {
	var prev PTE
	a.Update(va, func(p PTE) PTE {
		prev = p
		np := (p &^ (FlagSwapped | frameMask)) | FlagPresent | FlagAccessed
		return np.WithFrame(frame)
	})
	return prev
}

// MakeSwapped transitions va from resident back to swapped-out at slot
// (eviction path). Dirty and Accessed are cleared; INV is cleared too — the
// page's contents are being replaced by a fresh copy from storage next time.
func (a *AddressSpace) MakeSwapped(va uint64, slot uint64) PTE {
	var prev PTE
	a.Update(va, func(p PTE) PTE {
		prev = p
		np := (p &^ (FlagPresent | FlagDirty | FlagAccessed | FlagINV | frameMask)) | FlagSwapped
		return np.WithFrame(slot)
	})
	return prev
}

// WalkStep describes one page visited by VisitFrom.
type WalkStep struct {
	// VA is the page-aligned virtual address.
	VA uint64
	// PTE is the entry's current value (zero for holes).
	PTE PTE
	// NewTable is true when reaching this entry required stepping into a
	// page table not touched since the walk began (costing one extra
	// memory access in the prefetcher's timing model).
	NewTable bool
}

// VisitFrom iterates pages starting at the page containing startVA,
// ascending in virtual address order, calling visit for each until visit
// returns false or maxPages entries have been seen. Holes (absent leaf
// tables) are skipped table-at-a-time without per-page callbacks, mirroring
// how the paper's prefetcher "reverts to traversing the next PMD entry".
// It returns the number of pages visited and the number of distinct tables
// touched (for walk-cost accounting).
func (a *AddressSpace) VisitFrom(startVA uint64, maxPages int, visit func(WalkStep) bool) (visited, tablesTouched int) {
	va := canonical(startVA) &^ uint64(PageSize-1)
	end := uint64(1) << VABits
	tablesTouched = 1 // the walk begins by reading the PGD
	for visited < maxPages && va < end {
		// Descend to the PT covering va, skipping absent subtrees.
		n := &a.root
		l := 0
		hugeHit := false
		for ; l < Levels-1; l++ {
			if l == 2 && n.huge != nil {
				if hp := n.huge[indexAt(va, 2)]; hp != 0 {
					// One step covers the whole 2 MiB mapping.
					visited++
					tablesTouched++
					if !visit(WalkStep{VA: va &^ uint64(HugePageSize-1), PTE: hp}) {
						return visited, tablesTouched
					}
					va = (va &^ uint64(HugePageSize-1)) + HugePageSize
					hugeHit = true
					break
				}
			}
			next := n.kids[indexAt(va, l)]
			if next == nil {
				break
			}
			n = next
		}
		if hugeHit {
			continue
		}
		if l < Levels-1 {
			// Hole: advance past this absent subtree.
			span := uint64(1) << levelShift(l)
			va = (va &^ (span - 1)) + span
			continue
		}
		tablesTouched++
		// Scan the leaf table from va's index onward.
		for idx := indexAt(va, Levels-1); idx < EntriesPerTable && visited < maxPages; idx++ {
			step := WalkStep{VA: va, PTE: n.ptes[idx], NewTable: idx == indexAt(va, Levels-1) && visited > 0}
			visited++
			if !visit(step) {
				return visited, tablesTouched
			}
			va += PageSize
		}
	}
	return visited, tablesTouched
}
