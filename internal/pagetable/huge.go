package pagetable

import "fmt"

// Huge-page support: a PMD-level entry can map a whole 2 MiB region with a
// single leaf PTE, the structure behind the huge-page management the paper
// cites as motivation ("larger I/O sizes like huge page management", §1,
// [7,13]). The machine's SwapClusterPages models the I/O side of huge
// pages; this is the page-table side: mapping, lookup, and the demote
// (split) operation Linux performs when a huge mapping must become base
// pages.

const (
	// HugePageShift is log2 of the huge page size (PMD level: 2 MiB).
	HugePageShift = PageShift + 9
	// HugePageSize is the huge page size in bytes.
	HugePageSize = 1 << HugePageShift
)

// FlagHuge marks a PMD-level leaf mapping.
const FlagHuge PTE = 1 << 5

// Huge reports the huge-mapping bit.
func (p PTE) Huge() bool { return p&FlagHuge != 0 }

// hugeIndex returns the PMD index path for va: the PGD and PUD nodes, plus
// the PMD slot.
func (a *AddressSpace) hugeEntry(va uint64, alloc bool) *PTE {
	va = canonical(va)
	n := &a.root
	for l := 0; l < 2; l++ { // PGD, PUD
		idx := indexAt(va, l)
		next := n.kids[idx]
		if next == nil {
			if !alloc {
				return nil
			}
			next = &node{kids: make([]*node, EntriesPerTable)}
			n.kids[idx] = next
			a.tablesAllocated++
		}
		n = next
	}
	if n.huge == nil {
		if !alloc {
			return nil
		}
		n.huge = make([]PTE, EntriesPerTable)
	}
	return &n.huge[indexAt(va, 2)]
}

// MapHuge maps the 2 MiB-aligned region containing va as one huge page in
// the given state (the caller provides Present/Swapped flags and the frame
// or slot). It panics if base pages are already mapped inside the region —
// promotion (collapse) is a separate operation real kernels perform with
// care, and silently shadowing base PTEs would corrupt the space.
func (a *AddressSpace) MapHuge(va uint64, pte PTE) {
	base := canonical(va) &^ uint64(HugePageSize-1)
	// Refuse to shadow existing base mappings.
	if pmd := a.pmdNode(base); pmd != nil && pmd.kids != nil {
		if child := pmd.kids[indexAt(base, 2)]; child != nil {
			for _, e := range child.ptes {
				if e != 0 {
					panic(fmt.Sprintf("pagetable: MapHuge over mapped base pages at %#x", base))
				}
			}
		}
	}
	// A huge mapping at the PMD level changes what Lookup must return for
	// every VA in the region, including ones whose (empty) leaf table the
	// lookup cache may hold.
	a.lookPT = nil
	e := a.hugeEntry(base, true)
	old := *e
	if old.Mapped() {
		a.mapped -= EntriesPerTable
		if old.Present() {
			a.present -= EntriesPerTable
		}
	}
	pte |= FlagHuge
	*e = pte
	if pte.Mapped() {
		// A huge mapping counts as its 512 base pages in the occupancy
		// counters, keeping MappedPages/PresentPages meaningful.
		a.mapped += EntriesPerTable
		if pte.Present() {
			a.present += EntriesPerTable
		}
	}
}

// pmdNode returns the PMD-level node covering va, or nil.
func (a *AddressSpace) pmdNode(va uint64) *node {
	n := &a.root
	for l := 0; l < 2; l++ {
		next := n.kids[indexAt(va, l)]
		if next == nil {
			return nil
		}
		n = next
	}
	return n
}

// LookupHuge returns the huge-page PTE covering va, if one exists.
func (a *AddressSpace) LookupHuge(va uint64) (PTE, bool) {
	e := a.hugeEntry(canonical(va)&^uint64(HugePageSize-1), false)
	if e == nil || *e == 0 {
		return 0, false
	}
	return *e, true
}

// SplitHuge demotes the huge mapping covering va into 512 base-page PTEs,
// each produced by split(i) for base-page index i within the region (the
// kernel's huge-page split path: every base PTE inherits state derived from
// the huge one). It returns false if no huge mapping covers va.
func (a *AddressSpace) SplitHuge(va uint64, split func(i int) PTE) bool {
	base := canonical(va) &^ uint64(HugePageSize-1)
	e := a.hugeEntry(base, false)
	if e == nil || *e == 0 {
		return false
	}
	a.lookPT = nil
	old := *e
	*e = 0
	if old.Mapped() {
		a.mapped -= EntriesPerTable
		if old.Present() {
			a.present -= EntriesPerTable
		}
	}
	for i := 0; i < EntriesPerTable; i++ {
		a.Set(base+uint64(i)*PageSize, split(i))
	}
	return true
}
