package pagetable

import "testing"

func benchSpace(pages int) *AddressSpace {
	a := New()
	for i := 0; i < pages; i++ {
		a.MapSwapped(uint64(i)*PageSize, uint64(i))
	}
	return a
}

func BenchmarkWalk(b *testing.B) {
	a := benchSpace(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Walk(uint64(i%4096) * PageSize)
	}
}

func BenchmarkMakePresentSwapped(b *testing.B) {
	a := benchSpace(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := uint64(i%4096) * PageSize
		a.MakePresent(va, uint64(i))
		a.MakeSwapped(va, uint64(i))
	}
}

func BenchmarkVisitFrom(b *testing.B) {
	a := benchSpace(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.VisitFrom(uint64(i%4096)*PageSize, 8, func(WalkStep) bool { return true })
	}
}
