// Command tracegen generates the synthetic benchmark traces as binary ITRC
// files and inspects existing ones, so traces can be shipped, diffed, and
// replayed independently of the generators.
//
// Usage:
//
//	tracegen -gen wrf -scale 0.25 -o wrf.itrc    # generate one benchmark
//	tracegen -gen all -scale 0.25 -dir traces/   # generate all nine
//	tracegen -info wrf.itrc                      # inspect a trace file
//	tracegen -convert lackey.log -o real.itrc    # import Valgrind Lackey output
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"itsim"
)

func main() {
	var (
		gen     = flag.String("gen", "", "benchmark to generate ('all' for all nine)")
		scale   = flag.Float64("scale", 0.25, "workload scale factor")
		out     = flag.String("o", "", "output file (default <name>.itrc)")
		dir     = flag.String("dir", ".", "output directory for -gen all")
		info    = flag.String("info", "", "inspect an existing trace file")
		convert = flag.String("convert", "", "convert a Valgrind Lackey --trace-mem log to ITRC")
	)
	flag.Parse()

	switch {
	case *convert != "":
		path := *out
		if path == "" {
			path = strings.TrimSuffix(*convert, filepath.Ext(*convert)) + ".itrc"
		}
		if err := convertLackey(*convert, path); err != nil {
			fail(err)
		}
	case *info != "":
		if err := inspect(*info); err != nil {
			fail(err)
		}
	case *gen == "all":
		for _, name := range itsim.Workloads() {
			path := filepath.Join(*dir, name+".itrc")
			if err := generate(name, *scale, path); err != nil {
				fail(err)
			}
		}
	case *gen != "":
		path := *out
		if path == "" {
			path = *gen + ".itrc"
		}
		if err := generate(*gen, *scale, path); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// convertLackey imports a Valgrind Lackey log as an ITRC trace file.
func convertLackey(in, out string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(in), filepath.Ext(in))
	g, err := itsim.ParseLackey(f, name)
	if err != nil {
		return err
	}
	o, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := itsim.WriteTrace(o, g); err != nil {
		o.Close()
		return err
	}
	if err := o.Close(); err != nil {
		return err
	}
	st := itsim.AnalyzeTrace(g)
	fmt.Printf("%s -> %s: %d records, %d instructions, %d pages\n",
		in, out, st.Records, st.Instrs, st.UniquePages)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func generate(name string, scale float64, path string) error {
	g, err := itsim.NewGenerator(name, scale)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := itsim.WriteTrace(f, g); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %8d records  %6.1f MiB footprint  %7.1f KiB file\n",
		path, g.Len(), float64(g.FootprintBytes())/(1<<20), float64(st.Size())/1024)
	return nil
}

func inspect(path string) error {
	// Stream the trace: -info on a multi-gigabyte file runs in constant
	// memory.
	g, err := itsim.OpenTrace(path)
	if err != nil {
		return err
	}
	defer g.Close()
	st := itsim.AnalyzeTrace(g)
	if err := g.Err(); err != nil {
		return err
	}
	fmt.Printf("name            %s\n", st.Name)
	fmt.Printf("records         %d (%d loads, %d stores)\n", st.Records, st.Loads, st.Stores)
	fmt.Printf("instructions    %d\n", st.Instrs)
	fmt.Printf("unique pages    %d (%.1f MiB touched)\n", st.UniquePages, float64(st.UniquePages)*4096/(1<<20))
	fmt.Printf("address range   %#x .. %#x\n", st.MinAddr, st.MaxAddr)
	fmt.Printf("footprint       %.1f MiB (declared)\n", float64(g.FootprintBytes())/(1<<20))
	return nil
}
