package main_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildItslint compiles the multichecker once per test into a temp dir.
func buildItslint(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and execs the vet toolchain; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "itslint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestRunMode builds the multichecker and drives `itslint run` over one
// real package end to end: the go vet -vettool handshake, the suppression
// side channel, and the aggregated summary line on stderr.
func TestRunMode(t *testing.T) {
	bin := buildItslint(t)

	// internal/sched carries exactly two justified //itslint:allow
	// directives (see docs/LINTS.md); the package must come up clean with
	// those suppressions counted.
	cmd := exec.Command(bin, "run", "./internal/sched")
	cmd.Dir = repoRoot(t)
	var stderr bytes.Buffer
	cmd.Stdout = &stderr
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("itslint run ./internal/sched: %v\n%s", err, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "suppressed by //itslint:allow") {
		t.Errorf("summary line missing from output:\n%s", out)
	}
	if !strings.Contains(out, "simdeterminism=2") {
		t.Errorf("expected simdeterminism=2 suppressions in summary, got:\n%s", out)
	}
}

// writeFixtureModule lays out a throwaway `module itsim` tree containing a
// deterministic-set package with one fixable seedflow violation and one
// //itslint:allow-suppressed violation, plus the prng package the suggested
// fix rewrites into.
func writeFixtureModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module itsim\n\ngo 1.22\n",
		"internal/prng/prng.go": `// Package prng is a fixture stand-in for the simulator's PRNG.
package prng

// Source is a stub deterministic stream.
type Source struct{ s uint64 }

// New returns a stream seeded with seed.
func New(seed uint64) *Source { return &Source{s: seed} }

// Mix folds seed parts into one well-spread seed.
//
//itslint:seedmixer
func Mix(parts ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		h ^= p
	}
	return h
}
`,
		"internal/chaos/chaos.go": `// Package chaos is a deterministic-set fixture for the fix/budget drivers.
package chaos

import "itsim/internal/prng"

// Streams derives a per-lane stream with the collision-prone additive
// shape seedflow rewrites.
func Streams(seed uint64, lane int) *prng.Source {
	return prng.New(seed + uint64(lane))
}

// Legacy keeps a historical stream; its allow is what the budget counts.
func Legacy(seed uint64) *prng.Source {
	//itslint:allow historical stream kept for replay compatibility
	return prng.New(seed + 1)
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runIn executes the built binary in dir, returning the exit code and the
// separate output streams.
func runIn(t *testing.T, dir, bin string, args ...string) (int, string, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("itslint %s: %v\n%s%s", strings.Join(args, " "), err, stderr.String(), stdout.String())
		}
		code = ee.ExitCode()
	}
	return code, stdout.String(), stderr.String()
}

// TestSarifFixBudget is the driver round trip on the fixture module:
// `run -format sarif` emits a well-formed SARIF 2.1.0 log and exits
// nonzero, `fix` applies the prng.Mix rewrite and is idempotent, a clean
// re-run passes, and `-budget` enforces the committed suppression count.
func TestSarifFixBudget(t *testing.T) {
	bin := buildItslint(t)
	dir := writeFixtureModule(t)
	chaosPath := filepath.Join(dir, "internal", "chaos", "chaos.go")

	// SARIF: the finding is present, located, and attributed to seedflow.
	code, stdout, stderr := runIn(t, dir, bin, "run", "-format", "sarif", "./...")
	if code != 1 {
		t.Fatalf("run -format sarif: want exit 1 with findings, got %d\n%s%s", code, stderr, stdout)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "itslint" {
		t.Fatalf("malformed SARIF envelope:\n%s", stdout)
	}
	if len(log.Runs[0].Tool.Driver.Rules) < 7 {
		t.Errorf("rule table should list the whole suite, got %d rules", len(log.Runs[0].Tool.Driver.Rules))
	}
	found := false
	for _, r := range log.Runs[0].Results {
		if r.RuleID != "seedflow" || !strings.Contains(r.Message.Text, `bare "+" arithmetic`) {
			continue
		}
		if len(r.Locations) != 1 {
			t.Fatalf("seedflow result missing location: %+v", r)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != "internal/chaos/chaos.go" || loc.Region.StartLine == 0 {
			t.Errorf("seedflow result at wrong location: %+v", loc)
		}
		found = true
	}
	if !found {
		t.Fatalf("no seedflow bare-addition result in SARIF log:\n%s", stdout)
	}
	if !strings.Contains(stderr, "seedflow=1") {
		t.Errorf("suppression summary missing the allowed Legacy seed:\n%s", stderr)
	}

	// Fix: the additive seed is rewritten through prng.Mix; the suppressed
	// Legacy site is untouched.
	if code, stdout, stderr = runIn(t, dir, bin, "fix", "./..."); code != 0 {
		t.Fatalf("itslint fix: exit %d\n%s%s", code, stderr, stdout)
	}
	fixed, err := os.ReadFile(chaosPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "prng.New(prng.Mix(seed, uint64(lane)))") {
		t.Fatalf("fix did not rewrite the additive seed:\n%s", fixed)
	}
	if !strings.Contains(string(fixed), "prng.New(seed + 1)") {
		t.Fatalf("fix touched the //itslint:allow-suppressed site:\n%s", fixed)
	}

	// Idempotence: a second fix run changes nothing.
	if code, stdout, stderr = runIn(t, dir, bin, "fix", "./..."); code != 0 {
		t.Fatalf("second itslint fix: exit %d\n%s%s", code, stderr, stdout)
	}
	again, err := os.ReadFile(chaosPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixed, again) {
		t.Fatalf("itslint fix is not idempotent:\n--- first\n%s\n--- second\n%s", fixed, again)
	}

	// The fixed tree is clean, and the budget gate passes exactly when the
	// committed allowance covers the remaining suppression.
	if code, stdout, stderr = runIn(t, dir, bin, "run", "./..."); code != 0 {
		t.Fatalf("run after fix: want clean exit, got %d\n%s%s", code, stderr, stdout)
	}
	budget := filepath.Join(dir, ".itslint-budget")
	if err := os.WriteFile(budget, []byte("seedflow 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, stdout, stderr = runIn(t, dir, bin, "run", "-budget", budget, "./..."); code != 0 {
		t.Fatalf("run -budget with allowance: want exit 0, got %d\n%s%s", code, stderr, stdout)
	}
	if err := os.WriteFile(budget, []byte("# no allowances\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runIn(t, dir, bin, "run", "-budget", budget, "./...")
	if code == 0 || !strings.Contains(stderr, "exceed the committed budget") {
		t.Fatalf("run -budget without allowance: want budget violation, got exit %d\n%s", code, stderr)
	}
}

// repoRoot walks up from the test's working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
