package main_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunMode builds the multichecker and drives `itslint run` over one
// real package end to end: the go vet -vettool handshake, the suppression
// side channel, and the aggregated summary line on stderr.
func TestRunMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the vet toolchain; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "itslint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// internal/sched carries exactly two justified //itslint:allow
	// directives (see docs/LINTS.md); the package must come up clean with
	// those suppressions counted.
	cmd := exec.Command(bin, "run", "./internal/sched")
	cmd.Dir = repoRoot(t)
	var stderr bytes.Buffer
	cmd.Stdout = &stderr
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("itslint run ./internal/sched: %v\n%s", err, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "suppressed by //itslint:allow") {
		t.Errorf("summary line missing from output:\n%s", out)
	}
	if !strings.Contains(out, "simdeterminism=2") {
		t.Errorf("expected simdeterminism=2 suppressions in summary, got:\n%s", out)
	}
}

// repoRoot walks up from the test's working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
