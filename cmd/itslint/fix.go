package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"sort"
)

// fixMode runs the analyzers and applies their SuggestedFixes — byte-offset
// splices carried through `go vet -json` — to the working tree. Idempotent:
// once a site is rewritten its diagnostic is gone, so a second run is a
// no-op. Overlapping edits are applied first-wins; the skipped ones are
// reported so a re-run can pick them up against the new offsets.
func fixMode(args []string) int {
	fs := flag.NewFlagSet("itslint fix", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	diags, err := vetJSON(exe, nil, pkgs, "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}

	// Gather edits per file, deduplicated — the same diagnostic can surface
	// once per importing package.
	perFile := make(map[string][]vetEdit)
	seen := make(map[vetEdit]bool)
	for _, d := range diags {
		for _, f := range d.Fixes {
			for _, e := range f.Edits {
				if e.Filename == "" || seen[e] {
					continue
				}
				seen[e] = true
				perFile[e.Filename] = append(perFile[e.Filename], e)
			}
		}
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)

	applied, skipped, changed := 0, 0, 0
	for _, file := range files {
		n, s, err := applyEdits(file, perFile[file])
		if err != nil {
			fmt.Fprintf(os.Stderr, "itslint fix: %s: %v\n", file, err)
			return 2
		}
		applied += n
		skipped += s
		if n > 0 {
			changed++
		}
	}
	fmt.Fprintf(os.Stderr, "itslint fix: applied %d edits in %d files\n", applied, changed)
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "itslint fix: skipped %d overlapping or out-of-range edits; re-run to apply\n", skipped)
	}
	return 0
}

// applyEdits splices the edits into file, back to front so earlier byte
// offsets stay valid, keeping the original permission bits.
func applyEdits(file string, edits []vetEdit) (applied, skipped int, err error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Start != edits[j].Start {
			return edits[i].Start < edits[j].Start
		}
		return edits[i].End < edits[j].End
	})
	data, err := os.ReadFile(file)
	if err != nil {
		return 0, 0, err
	}
	mode := fs.FileMode(0o644)
	if info, err := os.Stat(file); err == nil {
		mode = info.Mode().Perm()
	}

	// First-wins overlap resolution on the ascending order...
	var kept []vetEdit
	lastEnd := -1
	for _, e := range edits {
		if e.Start < lastEnd || e.Start < 0 || e.End < e.Start || e.End > len(data) {
			skipped++
			continue
		}
		kept = append(kept, e)
		lastEnd = e.End
	}
	// ...then splice descending.
	for i := len(kept) - 1; i >= 0; i-- {
		e := kept[i]
		data = append(data[:e.Start:e.Start], append([]byte(e.New), data[e.End:]...)...)
		applied++
	}
	if applied == 0 {
		return 0, skipped, nil
	}
	return applied, skipped, os.WriteFile(file, data, mode)
}
