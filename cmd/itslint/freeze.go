package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"itsim/internal/analysis/schemafreeze"
)

// freezeMode regenerates the frozen-schema baseline: every vet worker
// appends its package's //itslint:frozen layouts to a capture file
// (-schemafreeze.freeze), which is merged, formatted deterministically and
// written to internal/analysis/testdata/frozen.json under the module root.
// Other analyzers' findings do not block a freeze — vet runs in JSON mode
// and the diagnostics are discarded.
func freezeMode(args []string) int {
	fs := flag.NewFlagSet("itslint freeze", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	capture, err := os.CreateTemp("", "itslint-freeze-*.jsonl")
	if err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	capture.Close()
	defer os.Remove(capture.Name())

	if _, err := vetJSON(exe, []string{"-schemafreeze.freeze=" + capture.Name()}, pkgs, ""); err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	data, err := os.ReadFile(capture.Name())
	if err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	baseline, err := schemafreeze.MergeCapture(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	path := filepath.Join(root, filepath.FromSlash(schemafreeze.BaselineRel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	if err := os.WriteFile(path, schemafreeze.FormatBaseline(baseline), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "itslint freeze: %d frozen structs -> %s\n", len(baseline), path)
	return 0
}

// moduleRoot locates the enclosing module via `go env GOMOD`.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module (go env GOMOD is empty)")
	}
	return filepath.Dir(gomod), nil
}
