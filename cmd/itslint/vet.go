package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"itsim/internal/analysis/itslint"
)

// vetDiag is one diagnostic out of `go vet -json` (the x/tools
// analysisflags JSON tree), flattened with its package and analyzer.
type vetDiag struct {
	Package  string
	Analyzer string
	File     string
	Line     int
	Col      int
	Message  string
	Fixes    []vetFix
}

type vetFix struct {
	Message string    `json:"message"`
	Edits   []vetEdit `json:"edits"`
}

// vetEdit is a byte-offset splice within Filename: [Start, End) replaced
// by New.
type vetEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	New      string `json:"new"`
}

type jsonDiagnostic struct {
	Posn           string   `json:"posn"`
	Message        string   `json:"message"`
	SuggestedFixes []vetFix `json:"suggested_fixes"`
}

// nonceArg mints the cache-busting flag for one driver invocation (see the
// comment in main).
func nonceArg() string {
	return fmt.Sprintf("-simdeterminism.nonce=%d.%d", os.Getpid(), time.Now().UnixNano())
}

// vetJSON drives `go vet -json -vettool=<self>` over pkgs and parses the
// emitted diagnostic tree. In JSON mode vet exits 0 when the analyses ran,
// so findings come back as diagnostics, not an error; a nonzero exit means
// an operational failure (a package that does not compile, a bad flag).
// summaryPath, when non-empty, receives the //itslint:allow suppression
// records through the $ITSLINT_SUMMARY side channel.
func vetJSON(exe string, extra, pkgs []string, summaryPath string) ([]vetDiag, error) {
	args := append([]string{"vet", "-json", "-vettool=" + exe, nonceArg()}, extra...)
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if summaryPath != "" {
		cmd.Env = append(os.Environ(), itslint.SummaryEnv+"="+summaryPath)
	}
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go vet: %v\n%s%s", err, stderr.String(), stdout.String())
	}
	// go vet writes the JSON tree to stderr interleaved with `# pkg`
	// progress lines; scan both streams to stay robust to that moving.
	var diags []vetDiag
	for _, stream := range [][]byte{stderr.Bytes(), stdout.Bytes()} {
		diags = append(diags, parseVetJSON(stream)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// parseVetJSON decodes a stream of JSON tree objects (one per package,
// pkgID → analyzer → diagnostics), skipping the `#` comment lines.
func parseVetJSON(data []byte) []vetDiag {
	var clean bytes.Buffer
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	var diags []vetDiag
	dec := json.NewDecoder(&clean)
	for {
		var tree map[string]map[string]json.RawMessage
		if err := dec.Decode(&tree); err != nil {
			return diags // io.EOF, or trailing non-JSON noise
		}
		for pkgID, byAnalyzer := range tree {
			for name, raw := range byAnalyzer {
				var list []jsonDiagnostic
				if err := json.Unmarshal(raw, &list); err != nil {
					continue // a per-analyzer error object, not a diagnostic list
				}
				for _, d := range list {
					file, line, col := splitPosn(d.Posn)
					diags = append(diags, vetDiag{
						Package:  pkgID,
						Analyzer: name,
						File:     file,
						Line:     line,
						Col:      col,
						Message:  d.Message,
						Fixes:    d.SuggestedFixes,
					})
				}
			}
		}
	}
}

// splitPosn splits an analysisflags position string "file:line:col".
func splitPosn(posn string) (file string, line, col int) {
	i := strings.LastIndex(posn, ":")
	if i < 0 {
		return posn, 0, 0
	}
	col, _ = strconv.Atoi(posn[i+1:])
	rest := posn[:i]
	j := strings.LastIndex(rest, ":")
	if j < 0 {
		return rest, col, 0
	}
	line, _ = strconv.Atoi(rest[j+1:])
	return rest[:j], line, col
}
