package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"itsim/internal/analysis/itslint"
)

// runMode self-drives go vet with this binary as the vettool, aggregating
// per-package suppression counts through the $ITSLINT_SUMMARY side channel
// into one summary line. -format sarif converts the diagnostics to a SARIF
// 2.1.0 log on stdout; -budget fails the run when suppressions exceed the
// committed per-analyzer allowance.
func runMode(args []string) int {
	fs := flag.NewFlagSet("itslint run", flag.ContinueOnError)
	format := fs.String("format", "text", `diagnostic format: "text" or "sarif"`)
	budgetPath := fs.String("budget", "", "enforce the named //itslint:allow budget file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "itslint: unknown -format %q (want text or sarif)\n", *format)
		return 2
	}
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	tmp, err := os.CreateTemp("", "itslint-summary-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	tmp.Close()
	defer os.Remove(tmp.Name())

	rc := 0
	switch *format {
	case "text":
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe, nonceArg()}, pkgs...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		cmd.Env = append(os.Environ(), itslint.SummaryEnv+"="+tmp.Name())
		if vetErr := cmd.Run(); vetErr != nil {
			if ee, ok := vetErr.(*exec.ExitError); ok {
				rc = ee.ExitCode()
			} else {
				fmt.Fprintln(os.Stderr, "itslint:", vetErr)
				rc = 2
			}
		}
	case "sarif":
		diags, err := vetJSON(exe, nil, pkgs, tmp.Name())
		if err != nil {
			fmt.Fprintln(os.Stderr, "itslint:", err)
			rc = 2
			break
		}
		os.Stdout.Write(sarifLog(diags))
		if len(diags) > 0 {
			rc = 1
		}
	}

	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		data = nil
	}
	perAnalyzer, total := itslint.ParseSummary(data)
	fmt.Fprintln(os.Stderr, itslint.FormatSummary(perAnalyzer, total))

	if *budgetPath != "" && rc != 2 {
		bdata, err := os.ReadFile(*budgetPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itslint:", err)
			return 2
		}
		budget, err := itslint.ParseBudget(bdata)
		if err != nil {
			fmt.Fprintf(os.Stderr, "itslint: %s: %v\n", *budgetPath, err)
			return 2
		}
		if violations := itslint.CheckBudget(perAnalyzer, budget); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "itslint budget:", v)
			}
			if rc == 0 {
				rc = 1
			}
		}
	}
	return rc
}
