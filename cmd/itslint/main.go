// Command itslint is the simulator's determinism lint suite: a go vet
// -vettool multichecker bundling the seven custom analyzers of
// internal/analysis — simdeterminism, gospawn, vtime, eventsink,
// entropyflow, seedflow and schemafreeze — that machine-check the
// invariants every figure in this repository rests on (same seed ⇒
// byte-identical summaries; see docs/LINTS.md).
//
// Four modes:
//
//	itslint run [-format text|sarif] [-budget file] [packages...]
//
// builds nothing and drives `go vet -vettool=<itself>` over the packages
// (default ./...), then prints the suppression summary — how many findings
// //itslint:allow directives absorbed, per analyzer. -format sarif emits
// the diagnostics as a SARIF 2.1.0 log on stdout; -budget fails the run
// when suppressions exceed the committed per-analyzer budget file. This is
// the mode CI and humans use.
//
//	itslint fix [packages...]
//
// applies every machine-safe SuggestedFix the analyzers attach (today:
// seedflow's wrap-in-prng.Mix rewrite) to the working tree. Idempotent —
// once rewritten, the diagnostics and so the fixes are gone.
//
//	itslint freeze [packages...]
//
// regenerates the //itslint:frozen struct-layout baseline at
// internal/analysis/testdata/frozen.json; commit the result.
//
// Any other invocation follows the x/tools unitchecker protocol, i.e. what
// the go vet driver calls with a .cfg file per package:
//
//	go vet -vettool=$(command -v itslint) ./...
package main

import (
	"os"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"itsim/internal/analysis/entropyflow"
	"itsim/internal/analysis/eventsink"
	"itsim/internal/analysis/gospawn"
	"itsim/internal/analysis/schemafreeze"
	"itsim/internal/analysis/seedflow"
	"itsim/internal/analysis/simdeterminism"
	"itsim/internal/analysis/vtime"
)

// analyzers is the suite, in docs/LINTS.md order. The slice feeds both the
// unitchecker registration and the SARIF rule table.
var analyzers = []*analysis.Analyzer{
	simdeterminism.Analyzer,
	gospawn.Analyzer,
	vtime.Analyzer,
	eventsink.Analyzer,
	entropyflow.Analyzer,
	seedflow.Analyzer,
	schemafreeze.Analyzer,
}

func main() {
	// nonce is a no-op flag the run/fix/freeze drivers set to a fresh value
	// on every invocation. go vet folds analyzer flags into its result-cache
	// key, so a fresh nonce forces every package to be re-analyzed — the
	// suppression summary and the freeze capture are append-only side
	// channels the cache knows nothing about, and a cache hit would silently
	// drop that package's records.
	simdeterminism.Analyzer.Flags.String("nonce", "",
		"no-op value; drivers pass a fresh one to defeat go vet's result cache")

	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "run":
			os.Exit(runMode(os.Args[2:]))
		case "fix":
			os.Exit(fixMode(os.Args[2:]))
		case "freeze":
			os.Exit(freezeMode(os.Args[2:]))
		}
	}
	unitchecker.Main(analyzers...)
}
