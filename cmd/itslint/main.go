// Command itslint is the simulator's determinism lint suite: a go vet
// -vettool multichecker bundling the four custom analyzers of
// internal/analysis — simdeterminism, gospawn, vtime and eventsink — that
// machine-check the invariants every figure in this repository rests on
// (same seed ⇒ byte-identical summaries; see docs/LINTS.md).
//
// Two modes:
//
//	itslint run [packages...]
//
// builds nothing and drives `go vet -vettool=<itself>` over the packages
// (default ./...), then prints the suppression summary — how many findings
// //itslint:allow directives absorbed, per analyzer. This is the mode CI
// and humans use.
//
// Any other invocation follows the x/tools unitchecker protocol, i.e. what
// the go vet driver calls with a .cfg file per package:
//
//	go vet -vettool=$(command -v itslint) ./...
package main

import (
	"fmt"
	"os"
	"os/exec"

	"golang.org/x/tools/go/analysis/unitchecker"

	"itsim/internal/analysis/eventsink"
	"itsim/internal/analysis/gospawn"
	"itsim/internal/analysis/itslint"
	"itsim/internal/analysis/simdeterminism"
	"itsim/internal/analysis/vtime"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "run" {
		os.Exit(runMode(os.Args[2:]))
	}
	unitchecker.Main(
		simdeterminism.Analyzer,
		gospawn.Analyzer,
		vtime.Analyzer,
		eventsink.Analyzer,
	)
}

// runMode self-drives go vet with this binary as the vettool, aggregating
// per-package suppression counts through the $ITSLINT_SUMMARY side channel
// into one summary line.
func runMode(pkgs []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}
	tmp, err := os.CreateTemp("", "itslint-summary-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "itslint:", err)
		return 2
	}
	tmp.Close()
	defer os.Remove(tmp.Name())

	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, pkgs...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Env = append(os.Environ(), itslint.SummaryEnv+"="+tmp.Name())
	vetErr := cmd.Run()

	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		data = nil
	}
	fmt.Fprintln(os.Stderr, itslint.FormatSummary(itslint.ParseSummary(data)))

	if vetErr == nil {
		return 0
	}
	if ee, ok := vetErr.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	fmt.Fprintln(os.Stderr, "itslint:", vetErr)
	return 2
}
