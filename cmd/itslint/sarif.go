package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
)

// Minimal SARIF 2.1.0 shapes — what GitHub code scanning and most editors
// ingest. Only the fields itslint populates are modeled.

type sarifFile struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLog renders the (already position-sorted) diagnostics as a SARIF
// 2.1.0 log. The rule table carries every analyzer in the suite, found or
// not, so consumers can enumerate what was checked.
func sarifLog(diags []vetDiag) []byte {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: docSummary(a.Doc)}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relURI(d.File)},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		})
	}
	log := sarifFile{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "itslint", InformationURI: "docs/LINTS.md", Rules: rules}},
			Results: results,
		}},
	}
	out, _ := json.MarshalIndent(log, "", "  ")
	return append(out, '\n')
}

// docSummary truncates an analyzer doc to its first clause for the SARIF
// rule table.
func docSummary(doc string) string {
	if i := strings.IndexAny(doc, ";\n"); i >= 0 {
		return doc[:i]
	}
	return doc
}

// relURI makes a diagnostic path repo-relative (forward slashes) when it
// sits under the working directory, which is what code-scanning consumers
// expect.
func relURI(path string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
	}
	return filepath.ToSlash(path)
}
