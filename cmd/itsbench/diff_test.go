package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"itsim/internal/metrics"
)

func writeDoc(t *testing.T, dir, name string, doc *jsonDoc) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func testDoc() *jsonDoc {
	return &jsonDoc{
		Scale: 0.25,
		Figures: map[string]map[string]map[string]float64{
			"fig4a": {"1_Data_Intensive": {"ITS": 1.0, "Sync": 1.8}},
		},
		Runs: []metrics.Summary{{
			Policy:      "ITS",
			Batch:       "1_Data_Intensive",
			MakespanNs:  1_000_000,
			MajorFaults: 420,
		}},
	}
}

func TestDiffIdenticalDocs(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", testDoc())
	b := writeDoc(t, dir, "b.json", testDoc())
	var out bytes.Buffer
	if code := diffMain([]string{a, b}, &out); code != 0 {
		t.Fatalf("identical docs: exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no drift") {
		t.Errorf("missing no-drift confirmation: %q", out.String())
	}
}

func TestDiffDetectsDrift(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", testDoc())
	changed := testDoc()
	changed.Figures["fig4a"]["1_Data_Intensive"]["Sync"] = 2.0
	changed.Runs[0].MakespanNs = 1_100_000
	b := writeDoc(t, dir, "b.json", changed)

	var out bytes.Buffer
	if code := diffMain([]string{a, b}, &out); code != 1 {
		t.Fatalf("drifted docs: exit %d, want 1; output:\n%s", code, out.String())
	}
	for _, want := range []string{
		"figures/fig4a/1_Data_Intensive/Sync",
		"runs/ITS/1_Data_Intensive/makespan_ns",
		"2 metrics drifted",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestDiffTolerance(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", testDoc())
	changed := testDoc()
	changed.Runs[0].MakespanNs = 1_010_000 // +1 %
	b := writeDoc(t, dir, "b.json", changed)

	var out bytes.Buffer
	if code := diffMain([]string{"-tolerance", "0.05", a, b}, &out); code != 0 {
		t.Fatalf("1%% drift under 5%% tolerance: exit %d, output:\n%s", code, out.String())
	}
	out.Reset()
	if code := diffMain([]string{"-tolerance", "0.001", a, b}, &out); code != 1 {
		t.Fatalf("1%% drift over 0.1%% tolerance: exit %d, output:\n%s", code, out.String())
	}
}

func TestDiffMissingAndExtraEntries(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", testDoc())
	changed := testDoc()
	changed.Figures["fig5a"] = map[string]map[string]float64{"x": {"ITS": 1}}
	changed.Runs = nil
	b := writeDoc(t, dir, "b.json", changed)

	var out bytes.Buffer
	if code := diffMain([]string{a, b}, &out); code != 1 {
		t.Fatalf("structural differences: exit %d, want 1; output:\n%s", code, out.String())
	}
	for _, want := range []string{
		"figures/fig5a: only in new document",
		"runs/ITS/1_Data_Intensive: missing from new document",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// A batch or policy that exists only in the NEW document must register as
// drift too — presence checks are symmetric at every nesting level, not just
// for whole figures.
func TestDiffExtraInnerEntriesAreDrift(t *testing.T) {
	dir := t.TempDir()
	a := writeDoc(t, dir, "a.json", testDoc())
	changed := testDoc()
	changed.Figures["fig4a"]["2_Data_Intensive"] = map[string]float64{"ITS": 1}
	changed.Figures["fig4a"]["1_Data_Intensive"]["Async"] = 2.5
	changed.Runs = append(changed.Runs, metrics.Summary{
		Policy: "Async", Batch: "1_Data_Intensive", MakespanNs: 2_000_000,
	})
	b := writeDoc(t, dir, "b.json", changed)

	var out bytes.Buffer
	if code := diffMain([]string{a, b}, &out); code != 1 {
		t.Fatalf("new-only entries: exit %d, want 1; output:\n%s", code, out.String())
	}
	for _, want := range []string{
		"figures/fig4a/2_Data_Intensive: only in new document",
		"figures/fig4a/1_Data_Intensive/Async: only in new document",
		"runs/Async/1_Data_Intensive: only in new document",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// The fault-injection summary section participates in the comparison: a
// drifted counter and a section present in only one document both fail.
func TestDiffFaultInjectionFields(t *testing.T) {
	dir := t.TempDir()
	base := testDoc()
	base.Runs[0].DemotedWaits = 3
	base.Runs[0].Injection = &metrics.InjectionStats{TailSpikes: 10, DMAFailures: 2, DMARetries: 2}
	a := writeDoc(t, dir, "a.json", base)

	changed := testDoc()
	changed.Runs[0].DemotedWaits = 4
	changed.Runs[0].Injection = &metrics.InjectionStats{TailSpikes: 11, DMAFailures: 2, DMARetries: 2}
	b := writeDoc(t, dir, "b.json", changed)

	var out bytes.Buffer
	if code := diffMain([]string{a, b}, &out); code != 1 {
		t.Fatalf("fault drift: exit %d, want 1; output:\n%s", code, out.String())
	}
	for _, want := range []string{
		"runs/ITS/1_Data_Intensive/demoted_waits",
		"runs/ITS/1_Data_Intensive/fault_injection/tail_spikes",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// Section appearing only on one side is structural drift, not a skip.
	noInj := testDoc()
	c := writeDoc(t, dir, "c.json", noInj)
	out.Reset()
	if code := diffMain([]string{a, c}, &out); code != 1 {
		t.Fatalf("injection section removed: exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "fault_injection: only in old document") {
		t.Errorf("output missing one-sided injection drift:\n%s", out.String())
	}
}

// fleetDoc builds a document with one fleet sweep entry, optionally
// carrying chaos stats.
func fleetDoc(withChaos bool) *jsonDoc {
	s := metrics.FleetSummary{
		Policy:     "ITS",
		Routing:    "health",
		Machines:   3,
		MakespanNs: 2_000_000,
		Requests:   10,
		Completed:  9,
		Tenants: []metrics.TenantStats{{
			Name: "web", Requests: 10, Completed: 9,
			SLOAttainment: 0.9, TimedOut: 2, Retries: 1, Failed: 1,
		}},
	}
	if withChaos {
		s.Chaos = &metrics.ChaosStats{Crashes: 3, Rehomed: 5, Timeouts: 2, Retries: 1, Failed: 1}
	}
	return &jsonDoc{Scale: 0.25, Fleet: []metrics.FleetSummary{s}}
}

func TestDiffFleetSection(t *testing.T) {
	dir := t.TempDir()

	// Identical fleet docs: clean.
	a := writeDoc(t, dir, "a.json", fleetDoc(true))
	b := writeDoc(t, dir, "b.json", fleetDoc(true))
	var out bytes.Buffer
	if code := diffMain([]string{a, b}, &out); code != 0 {
		t.Fatalf("identical fleet docs: exit %d, output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 fleet sweeps") {
		t.Errorf("fleet sweep not counted: %q", out.String())
	}

	// Drifted resilience counters register per metric.
	changed := fleetDoc(true)
	changed.Fleet[0].Tenants[0].TimedOut = 5
	changed.Fleet[0].Chaos.Crashes = 7
	c := writeDoc(t, dir, "c.json", changed)
	out.Reset()
	if code := diffMain([]string{a, c}, &out); code != 1 {
		t.Fatalf("drifted fleet docs: exit %d, want 1; output:\n%s", code, out.String())
	}
	for _, want := range []string{
		"fleet/health/ITS/tenants/web/timed_out",
		"fleet/health/ITS/chaos/crashes",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	// A chaos block appearing on one side only is drift in either
	// direction — the zero-chaos byte-inertness gate's comparator.
	plain := writeDoc(t, dir, "plain.json", fleetDoc(false))
	for _, pair := range [][2]string{{plain, a}, {a, plain}} {
		out.Reset()
		if code := diffMain([]string{pair[0], pair[1]}, &out); code != 1 {
			t.Fatalf("chaos-block asymmetry: exit %d, want 1; output:\n%s", code, out.String())
		}
		if !strings.Contains(out.String(), "chaos: only in") {
			t.Errorf("asymmetric chaos block not reported:\n%s", out.String())
		}
	}
}

func TestDiffUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code := diffMain([]string{"only-one.json"}, &out); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	if code := diffMain([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &out); code != 2 {
		t.Errorf("unreadable files: exit %d, want 2", code)
	}
}

// TestDiffSchemaVersion: mismatched nonzero schema versions are a layout
// change, not drift — exit 3 before any counter comparison; an unversioned
// (pre-versioning) document compares with anything.
func TestDiffSchemaVersion(t *testing.T) {
	dir := t.TempDir()
	docAt := func(v int) *jsonDoc {
		d := testDoc()
		d.SchemaVersion = v
		return d
	}
	cases := []struct {
		name     string
		oldV     int
		newV     int
		wantCode int
	}{
		{"both current", docSchemaVersion, docSchemaVersion, 0},
		{"mismatched nonzero", 1, 2, 3},
		{"mismatched nonzero reversed", 2, 1, 3},
		{"old unversioned", 0, docSchemaVersion, 0},
		{"new unversioned", docSchemaVersion, 0, 0},
		{"both unversioned", 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := writeDoc(t, dir, "old.json", docAt(tc.oldV))
			b := writeDoc(t, dir, "new.json", docAt(tc.newV))
			var out bytes.Buffer
			if code := diffMain([]string{a, b}, &out); code != tc.wantCode {
				t.Fatalf("exit %d, want %d; output:\n%s", code, tc.wantCode, out.String())
			}
			if tc.wantCode == 3 && strings.Contains(out.String(), "drifted") {
				t.Errorf("version mismatch reported as drift:\n%s", out.String())
			}
		})
	}
}
