package main

import (
	"fmt"

	"itsim/internal/cluster"
	"itsim/internal/core"
	"itsim/internal/policy"
	"itsim/internal/report"
	"itsim/internal/sim"
)

// fleetTenantSpec is the fixed serving mix of the fleet experiment: a
// high-priority latency-sensitive tenant with a tight objective, a
// data-intensive bulk tenant, and a bursty background tenant. Pinned so
// `itsbench -exp fleet` output is a reproducible document, like the
// figure experiments.
const fleetTenantSpec = "name=web,bench=pagerank,rate=3e5,req=6,prio=3,slo=20ms;" +
	"name=train,bench=caffe,rate=2e5,req=5,prio=2,pattern=diurnal,slo=60ms;" +
	"name=batch,bench=randomwalk,rate=1e5,req=4,prio=1,pattern=bursty"

// fleetPolicies are the I/O-mode policies the sweep contrasts: the paper's
// baseline synchronous mode against ITS, across every routing policy.
var fleetPolicies = []policy.Kind{policy.Sync, policy.ITS}

// printFleet runs the fleet serving sweep — every routing policy × Sync/ITS
// over the fixed three-tenant mix — and reports per-tenant tail latency and
// SLO attainment.
func printFleet(opts core.Options, format string, doc *jsonDoc) error {
	specs, err := cluster.ParseTenantSpec(fleetTenantSpec)
	if err != nil {
		return err
	}
	t := report.NewTable("Fleet serving sweep — 3 machines, routing × policy, per-tenant tails",
		"routing", "policy", "tenant", "p50 lat", "p99 lat", "p99 sync-wait", "SLO attained")
	for _, routing := range cluster.RouterNames() {
		for _, kind := range fleetPolicies {
			res, err := cluster.Run(cluster.Config{
				Machines:      3,
				Policy:        kind,
				ITS:           opts.ITS,
				Routing:       routing,
				Tenants:       specs,
				Scale:         opts.Scale,
				Cores:         opts.Cores,
				Fault:         opts.Fault,
				Chaos:         opts.Chaos,
				SpinBudget:    opts.SpinBudget,
				Tracer:        opts.Tracer,
				GaugeInterval: opts.GaugeInterval,
			})
			if err != nil {
				return err
			}
			if doc != nil {
				doc.Fleet = append(doc.Fleet, res.Summary)
				continue
			}
			for _, ten := range res.Summary.Tenants {
				attained := "-"
				if ten.SLONs > 0 {
					attained = fmt.Sprintf("%.1f%%", 100*ten.SLOAttainment)
				}
				t.AddRow(routing, kind.String(), ten.Name,
					sim.Time(ten.Latency.P50Ns).String(), sim.Time(ten.Latency.P99Ns).String(),
					sim.Time(ten.SyncWait.P99Ns).String(), attained)
			}
		}
	}
	if doc != nil {
		return nil
	}
	return emit(t, format)
}
