package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The harness is exercised end-to-end at a tiny scale: every experiment and
// format must render without error (outputs go to stdout; correctness of
// the numbers is covered by internal/core's tests).
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	for _, exp := range []string{"setup", "obs", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "xover", "spin"} {
		if err := run(exp, 0.01, 0, "text", "", "chrome", "", 0); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	for _, format := range []string{"csv", "chart", "json"} {
		if err := run("fig4a", 0.01, 0, format, "", "chrome", "", 0); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
	}
}

func TestRunMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	if err := run("fig4a", 0.01, 2, "text", "", "chrome", "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run("nope", 0.01, 0, "text", "", "chrome", "", 0); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run("fig4a", 0.01, 0, "nope", "", "chrome", "", 0); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run("fig4a", 0.01, 0, "text", "x.json", "nope", "", 0); err == nil {
		t.Fatal("unknown trace format accepted")
	}
}

// A traced multi-run experiment must produce a single well-formed Chrome
// trace file covering every run.
func TestRunWithTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := run("fig4a", 0.01, 0, "text", path, "chrome", "", 50*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}
