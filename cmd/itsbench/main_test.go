package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// tiny returns the params for a minimal-scale harness run of exp, with
// overrides applied by the caller.
func tiny(exp string) params {
	return params{exp: exp, scale: 0.01, format: "text", traceFormat: "chrome"}
}

// The harness is exercised end-to-end at a tiny scale: every experiment and
// format must render without error (outputs go to stdout; correctness of
// the numbers is covered by internal/core's tests).
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	for _, exp := range []string{"setup", "obs", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "xover", "spin"} {
		if err := run(tiny(exp)); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	for _, format := range []string{"csv", "chart", "json"} {
		p := tiny("fig4a")
		p.format = format
		if err := run(p); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
	}
}

func TestRunMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	p := tiny("fig4a")
	p.cores = 2
	if err := run(p); err != nil {
		t.Fatal(err)
	}
}

// A degraded-device run: faults, demotion budget and prefetch throttle all
// enabled must still render every figure.
func TestRunWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	p := tiny("fig4a")
	p.faults = "seed=7,tailp=0.05,tailx=8,stallp=0.01,dmap=0.02"
	p.spinBudget = 3 * time.Microsecond
	p.prefetchThrottle = 0.5
	if err := run(p); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run(tiny("nope")); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	p := tiny("fig4a")
	p.format = "nope"
	if err := run(p); err == nil {
		t.Fatal("unknown format accepted")
	}
	p = tiny("fig4a")
	p.traceOut, p.traceFormat = "x.json", "nope"
	if err := run(p); err == nil {
		t.Fatal("unknown trace format accepted")
	}
	p = tiny("fig4a")
	p.faults = "tailp=nope"
	if err := run(p); err == nil {
		t.Fatal("bad fault spec accepted")
	}
	p = tiny("fig4a")
	p.spinBudget = -time.Microsecond
	if err := run(p); err == nil {
		t.Fatal("negative spin budget accepted")
	}
	p = tiny("fig4a")
	p.prefetchThrottle = 1.5
	if err := run(p); err == nil {
		t.Fatal("out-of-range prefetch throttle accepted")
	}
}

// A traced multi-run experiment must produce a single well-formed Chrome
// trace file covering every run.
func TestRunWithTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	p := tiny("fig4a")
	p.traceOut = filepath.Join(t.TempDir(), "trace.json")
	p.gaugeEvery = 50 * time.Microsecond
	if err := run(p); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
}
