package main

import "testing"

// The harness is exercised end-to-end at a tiny scale: every experiment and
// format must render without error (outputs go to stdout; correctness of
// the numbers is covered by internal/core's tests).
func TestRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	for _, exp := range []string{"setup", "obs", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "xover", "spin"} {
		if err := run(exp, 0.01, "text"); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run in -short mode")
	}
	for _, format := range []string{"csv", "chart"} {
		if err := run("fig4a", 0.01, format); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run("nope", 0.01, "text"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run("fig4a", 0.01, "nope"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
