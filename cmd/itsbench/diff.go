package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// diffMain is the `itsbench diff` subcommand: it compares two -format json
// documents and reports every metric that drifted beyond the tolerance —
// the ROADMAP's regression check. Exit status: 0 when the documents agree,
// 1 on drift, 2 on usage or read errors, 3 when the documents carry
// mismatched nonzero schema versions (a layout change, not drift; an
// unversioned pre-versioning document compares with anything).
//
//	itsbench -exp all -format json > before.json
//	# ...change the simulator...
//	itsbench -exp all -format json > after.json
//	itsbench diff before.json after.json
func diffMain(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	tolerance := fs.Float64("tolerance", 0,
		"maximum tolerated relative drift per metric (0 = exact match)")
	perfTolerance := fs.Float64("perf-tolerance", -1,
		"maximum tolerated relative drift for host-dependent perf fields (wall_ns, records_per_sec); negative = skip them")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: itsbench diff [-tolerance frac] [-perf-tolerance frac] old.json new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	oldDoc, err := loadDoc(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "itsbench diff:", err)
		return 2
	}
	newDoc, err := loadDoc(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "itsbench diff:", err)
		return 2
	}
	if oldDoc.SchemaVersion != 0 && newDoc.SchemaVersion != 0 &&
		oldDoc.SchemaVersion != newDoc.SchemaVersion {
		fmt.Fprintf(os.Stderr,
			"itsbench diff: schema version mismatch: %s is v%d, %s is v%d; "+
				"regenerate the older document before comparing\n",
			fs.Arg(0), oldDoc.SchemaVersion, fs.Arg(1), newDoc.SchemaVersion)
		return 3
	}
	drifts := diffDocs(oldDoc, newDoc, *tolerance)
	drifts = append(drifts, diffPerf(oldDoc, newDoc, *tolerance, *perfTolerance)...)
	if len(drifts) == 0 {
		fmt.Fprintf(out, "itsbench diff: no drift (%d figures, %d runs, %d fleet sweeps, %d perf points compared)\n",
			len(oldDoc.Figures), len(oldDoc.Runs), len(oldDoc.Fleet), len(oldDoc.Perf))
		return 0
	}
	for _, d := range drifts {
		fmt.Fprintln(out, d)
	}
	fmt.Fprintf(out, "itsbench diff: %d metrics drifted\n", len(drifts))
	return 1
}

func loadDoc(path string) (*jsonDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc jsonDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

// diffDocs returns one line per drifted metric, sorted for stable output.
func diffDocs(oldDoc, newDoc *jsonDoc, tol float64) []string {
	var drifts []string
	report := func(name string, a, b float64) {
		if !withinTolerance(a, b, tol) {
			drifts = append(drifts, fmt.Sprintf("%s: %v -> %v (%+.3g%%)",
				name, a, b, relDrift(a, b)*100))
		}
	}

	// Figures: figure → batch → policy → value.
	for _, fig := range sortedKeys(oldDoc.Figures) {
		newFig, ok := newDoc.Figures[fig]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("figures/%s: missing from new document", fig))
			continue
		}
		for _, batch := range sortedKeys(oldDoc.Figures[fig]) {
			newRow, ok := newFig[batch]
			if !ok {
				drifts = append(drifts, fmt.Sprintf("figures/%s/%s: missing from new document", fig, batch))
				continue
			}
			for _, pol := range sortedKeys(oldDoc.Figures[fig][batch]) {
				nv, ok := newRow[pol]
				if !ok {
					drifts = append(drifts, fmt.Sprintf("figures/%s/%s/%s: missing from new document", fig, batch, pol))
					continue
				}
				report(fmt.Sprintf("figures/%s/%s/%s", fig, batch, pol),
					oldDoc.Figures[fig][batch][pol], nv)
			}
			for _, pol := range sortedKeys(newRow) {
				if _, ok := oldDoc.Figures[fig][batch][pol]; !ok {
					drifts = append(drifts, fmt.Sprintf("figures/%s/%s/%s: only in new document", fig, batch, pol))
				}
			}
		}
		for _, batch := range sortedKeys(newFig) {
			if _, ok := oldDoc.Figures[fig][batch]; !ok {
				drifts = append(drifts, fmt.Sprintf("figures/%s/%s: only in new document", fig, batch))
			}
		}
	}
	for _, fig := range sortedKeys(newDoc.Figures) {
		if _, ok := oldDoc.Figures[fig]; !ok {
			drifts = append(drifts, fmt.Sprintf("figures/%s: only in new document", fig))
		}
	}

	// Run summaries, keyed by policy/batch.
	type runKey struct{ policy, batch string }
	oldRuns := make(map[runKey]int, len(oldDoc.Runs))
	for i, r := range oldDoc.Runs {
		oldRuns[runKey{r.Policy, r.Batch}] = i
	}
	seen := make(map[runKey]bool, len(newDoc.Runs))
	for _, r := range newDoc.Runs {
		key := runKey{r.Policy, r.Batch}
		seen[key] = true
		i, ok := oldRuns[key]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("runs/%s/%s: only in new document", r.Policy, r.Batch))
			continue
		}
		o := oldDoc.Runs[i]
		prefix := fmt.Sprintf("runs/%s/%s/", r.Policy, r.Batch)
		type metricPair struct {
			name     string
			old, new float64
		}
		fields := []metricPair{
			{"makespan_ns", float64(o.MakespanNs), float64(r.MakespanNs)},
			{"total_idle_ns", float64(o.TotalIdleNs), float64(r.TotalIdleNs)},
			{"scheduler_idle_ns", float64(o.SchedulerIdleNs), float64(r.SchedulerIdleNs)},
			{"context_switch_time_ns", float64(o.ContextSwitchTimeNs), float64(r.ContextSwitchTimeNs)},
			{"fault_handler_time_ns", float64(o.FaultHandlerTimeNs), float64(r.FaultHandlerTimeNs)},
			{"total_stolen_ns", float64(o.TotalStolenNs), float64(r.TotalStolenNs)},
			{"major_faults", float64(o.MajorFaults), float64(r.MajorFaults)},
			{"minor_faults", float64(o.MinorFaults), float64(r.MinorFaults)},
			{"llc_misses", float64(o.LLCMisses), float64(r.LLCMisses)},
			{"context_switches", float64(o.ContextSwitches), float64(r.ContextSwitches)},
			{"prefetch_accuracy", o.PrefetchAccuracy, r.PrefetchAccuracy},
			{"avg_finish_ns", float64(o.AvgFinishNs), float64(r.AvgFinishNs)},
			{"top_half_avg_finish_ns", float64(o.TopHalfAvgFinishNs), float64(r.TopHalfAvgFinishNs)},
			{"bottom_half_avg_finish_ns", float64(o.BottomHalfAvgFinishNs), float64(r.BottomHalfAvgFinishNs)},
			{"demoted_waits", float64(o.DemotedWaits), float64(r.DemotedWaits)},
			{"prefetch_throttled", float64(o.PrefetchThrottled), float64(r.PrefetchThrottled)},
		}
		oi, ni := o.Injection, r.Injection
		if (oi == nil) != (ni == nil) {
			have := "new"
			if ni == nil {
				have = "old"
			}
			drifts = append(drifts, fmt.Sprintf("%sfault_injection: only in %s document", prefix, have))
		} else if oi != nil {
			fields = append(fields,
				metricPair{"fault_injection/tail_spikes", float64(oi.TailSpikes), float64(ni.TailSpikes)},
				metricPair{"fault_injection/channel_stalls", float64(oi.ChannelStalls), float64(ni.ChannelStalls)},
				metricPair{"fault_injection/dma_failures", float64(oi.DMAFailures), float64(ni.DMAFailures)},
				metricPair{"fault_injection/dma_retries", float64(oi.DMARetries), float64(ni.DMARetries)},
			)
		}
		for _, f := range fields {
			report(prefix+f.name, f.old, f.new)
		}
	}
	for _, r := range oldDoc.Runs {
		if !seen[runKey{r.Policy, r.Batch}] {
			drifts = append(drifts, fmt.Sprintf("runs/%s/%s: missing from new document", r.Policy, r.Batch))
		}
	}

	// Fleet summaries, keyed by routing/policy: the serving sweep's tails
	// and attainment, plus resilience counters when either document carries
	// them. This is the zero-chaos equivalence gate's comparator — chaos
	// counters appearing in only one document always register as drift.
	type fleetKey struct{ routing, policy string }
	oldFleet := make(map[fleetKey]int, len(oldDoc.Fleet))
	for i, s := range oldDoc.Fleet {
		oldFleet[fleetKey{s.Routing, s.Policy}] = i
	}
	seenFleet := make(map[fleetKey]bool, len(newDoc.Fleet))
	for _, s := range newDoc.Fleet {
		key := fleetKey{s.Routing, s.Policy}
		seenFleet[key] = true
		i, ok := oldFleet[key]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("fleet/%s/%s: only in new document", s.Routing, s.Policy))
			continue
		}
		o := oldDoc.Fleet[i]
		prefix := fmt.Sprintf("fleet/%s/%s/", s.Routing, s.Policy)
		report(prefix+"makespan_ns", float64(o.MakespanNs), float64(s.MakespanNs))
		report(prefix+"completed", float64(o.Completed), float64(s.Completed))
		oldTenants := make(map[string]int, len(o.Tenants))
		for ti, t := range o.Tenants {
			oldTenants[t.Name] = ti
		}
		for _, t := range s.Tenants {
			ti, ok := oldTenants[t.Name]
			if !ok {
				drifts = append(drifts, fmt.Sprintf("%stenants/%s: only in new document", prefix, t.Name))
				continue
			}
			ot := o.Tenants[ti]
			tp := fmt.Sprintf("%stenants/%s/", prefix, t.Name)
			report(tp+"completed", float64(ot.Completed), float64(t.Completed))
			report(tp+"latency_p99_ns", float64(ot.Latency.P99Ns), float64(t.Latency.P99Ns))
			report(tp+"slo_attainment", ot.SLOAttainment, t.SLOAttainment)
			report(tp+"timed_out", float64(ot.TimedOut), float64(t.TimedOut))
			report(tp+"retries", float64(ot.Retries), float64(t.Retries))
			report(tp+"hedges", float64(ot.Hedges), float64(t.Hedges))
			report(tp+"shed", float64(ot.Shed), float64(t.Shed))
			report(tp+"failed", float64(ot.Failed), float64(t.Failed))
		}
		oc, nc := o.Chaos, s.Chaos
		if (oc == nil) != (nc == nil) {
			have := "new"
			if nc == nil {
				have = "old"
			}
			drifts = append(drifts, fmt.Sprintf("%schaos: only in %s document", prefix, have))
		} else if oc != nil {
			report(prefix+"chaos/crashes", float64(oc.Crashes), float64(nc.Crashes))
			report(prefix+"chaos/flaps", float64(oc.Flaps), float64(nc.Flaps))
			report(prefix+"chaos/brownouts", float64(oc.Brownouts), float64(nc.Brownouts))
			report(prefix+"chaos/rehomed", float64(oc.Rehomed), float64(nc.Rehomed))
			report(prefix+"chaos/shed", float64(oc.Shed), float64(nc.Shed))
			report(prefix+"chaos/failed", float64(oc.Failed), float64(nc.Failed))
		}
	}
	for _, s := range oldDoc.Fleet {
		if !seenFleet[fleetKey{s.Routing, s.Policy}] {
			drifts = append(drifts, fmt.Sprintf("fleet/%s/%s: missing from new document", s.Routing, s.Policy))
		}
	}
	return drifts
}

// withinTolerance reports whether b is within the relative tolerance of a.
// tol 0 demands exact equality.
func withinTolerance(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return relDrift(a, b) <= tol
}

// relDrift is |b-a| relative to |a| (or to |b| when a is zero, so appearing
// and disappearing values always register).
func relDrift(a, b float64) float64 {
	base := math.Abs(a)
	if base == 0 {
		base = math.Abs(b)
	}
	if base == 0 {
		return 0
	}
	return math.Abs(b-a) / base
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
