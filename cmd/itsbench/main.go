// Command itsbench regenerates every table and figure of the paper's
// evaluation as text tables, CSV, ASCII bar charts, or one JSON document:
//
//	obs    — §2.2 observation: CPU idle time vs process count (Sync mode)
//	fig4a  — normalized total CPU idle time, 4 batches × 5 policies
//	fig4b  — page-fault counts (unit: 100 k)
//	fig4c  — CPU cache-miss counts (unit: 1 M)
//	fig5a  — normalized avg finish time, top-50 % priority processes
//	fig5b  — normalized avg finish time, bottom-50 % priority processes
//	setup  — §4.1 configuration constants + measured sync-wait distribution
//	xover  — huge-I/O sync-vs-async crossover sweep (§1 motivation)
//	spin   — ITS vs kernel-style hybrid polling (spin-then-block)
//	sens   — Figure 4a robustness across random priority draws
//	fleet  — multi-machine serving sweep: routing × Sync/ITS per-tenant tails
//	all    — everything above except fleet (which extends, not reproduces,
//	         the paper, and would shift the frozen `-exp all` document)
//
// Usage:
//
//	itsbench -exp all -scale 0.25
//	itsbench -exp fig4a -format csv
//	itsbench -exp fig4a -format chart
//	itsbench -exp all -format json
//	itsbench -exp fig4a -trace-out trace.json -trace-format chrome
//	itsbench diff before.json after.json
//	itsbench perf -o BENCH_1.json
//
// The diff subcommand compares two -format json documents and exits
// non-zero when any figure value or run-summary metric drifted beyond
// -tolerance (default: exact match) — the regression check for simulator
// changes that must not move the numbers.
//
// The perf subcommand snapshots the simulator's own throughput trajectory
// (deterministic virtual-time outcomes plus host wall-clock rates) as a
// JSON document; `itsbench diff -perf-tolerance` compares snapshots, with
// host-dependent fields skipped by default.
//
// With -trace-out every simulated run streams its event trace into one file
// (runs become separate trace processes); see docs/OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"itsim/internal/chaos"
	"itsim/internal/core"
	"itsim/internal/fault"
	"itsim/internal/kernel"
	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/report"
	"itsim/internal/sched"
	"itsim/internal/sim"
	"itsim/internal/storage"
	"itsim/internal/workload"
)

// params carries the parsed command line.
type params struct {
	exp              string
	scale            float64
	cores            int
	format           string
	traceOut         string
	traceFormat      string
	traceFilter      string
	gaugeEvery       time.Duration
	faults           string
	chaos            string
	spinBudget       time.Duration
	prefetchThrottle float64
}

func main() {
	// Subcommand dispatch precedes flag parsing: `itsbench diff a.json
	// b.json` compares two -format json documents (regression check).
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(diffMain(os.Args[2:], os.Stdout))
	}
	// `itsbench perf` snapshots simulator throughput (BENCH_<n>.json).
	if len(os.Args) > 1 && os.Args[1] == "perf" {
		os.Exit(perfMain(os.Args[2:], os.Stdout))
	}
	var p params
	flag.StringVar(&p.exp, "exp", "all", "experiment: obs|fig4a|fig4b|fig4c|fig5a|fig5b|setup|xover|spin|sens|fleet|all")
	flag.Float64Var(&p.scale, "scale", 0.25, "workload scale factor")
	flag.IntVar(&p.cores, "cores", 0, "simulated core count (0/1 = single-core; >1 = SMP with work stealing)")
	flag.StringVar(&p.format, "format", "text", "output format: text|csv|chart|json")
	flag.StringVar(&p.traceOut, "trace-out", "", "write the simulation event trace of every run to this file (empty = off)")
	flag.StringVar(&p.traceFormat, "trace-format", "chrome", "trace format: chrome|jsonl")
	flag.StringVar(&p.traceFilter, "trace-filter", "", "comma-separated event types and pid=N entries (empty = all)")
	flag.DurationVar(&p.gaugeEvery, "gauge-interval", 0, "virtual-time gauge sampling interval, e.g. 100us (0 = off)")
	flag.StringVar(&p.faults, "faults", "", "device fault-injection spec, e.g. 'seed=42,tailp=0.01,tailx=8,stallp=0.001,dmap=0.005' (empty = off)")
	flag.StringVar(&p.chaos, "chaos", "", "machine-level chaos spec for -exp fleet, e.g. 'seed=1,crashr=20,brownr=40' (empty = off)")
	flag.DurationVar(&p.spinBudget, "spin-budget", 0, "demote synchronous waits predicted to exceed this budget to async switches (0 = off)")
	flag.Float64Var(&p.prefetchThrottle, "prefetch-throttle", 0, "ITS skips prefetch walks when this fraction of storage channels is busy, e.g. 0.75 (0 = off)")
	flag.Parse()
	if err := run(p); err != nil {
		fmt.Fprintln(os.Stderr, "itsbench:", err)
		os.Exit(1)
	}
}

// emit renders a table in the selected format.
func emit(t *report.Table, format string) error {
	switch format {
	case "csv":
		return t.WriteCSV(os.Stdout)
	default:
		return t.WriteText(os.Stdout)
	}
}

// docSchemaVersion is stamped into every -format json document. Bump it
// when the document layout changes incompatibly; `itsbench diff` refuses
// (exit 3) to compare documents with different nonzero versions instead of
// mis-reporting the layout change as counter drift.
const docSchemaVersion = 1

// jsonDoc is the -format json output: one document holding every selected
// experiment's data, with durations in virtual nanoseconds.
type jsonDoc struct {
	// SchemaVersion is docSchemaVersion at write time; 0 marks a document
	// from before versioning and compares with anything.
	SchemaVersion int                     `json:"schema_version,omitempty"`
	Scale         float64                 `json:"scale"`
	Setup         map[string]string       `json:"setup,omitempty"`
	Observation   []core.ObservationPoint `json:"observation,omitempty"`
	// Figures maps figure name → batch → policy → value (normalized for
	// fig4a/fig5a/fig5b, raw unit counts for fig4b/fig4c).
	Figures map[string]map[string]map[string]float64 `json:"figures,omitempty"`
	// Runs holds the full per-run summaries behind the figures, including
	// histogram buckets.
	Runs        []metrics.Summary        `json:"runs,omitempty"`
	Crossover   []core.CrossoverPoint    `json:"crossover,omitempty"`
	Spin        []core.SpinPoint         `json:"spin,omitempty"`
	Sensitivity []core.SensitivityResult `json:"sensitivity,omitempty"`
	// Perf is the `itsbench perf` simulator-throughput trajectory
	// (BENCH_<n>.json snapshots; see perf.go).
	Perf []PerfPoint `json:"perf,omitempty"`
	// Fleet holds the `-exp fleet` serving-sweep summaries, one per
	// routing × policy cell (see fleet.go).
	Fleet []metrics.FleetSummary `json:"fleet,omitempty"`
}

func run(p params) error {
	// Validate the output format and trace flags before any experiment
	// runs — a grid at full scale is minutes of work to waste on a typo.
	switch p.format {
	case "text", "csv", "chart", "json":
	default:
		return fmt.Errorf("unknown format %q (want text, csv, chart or json)", p.format)
	}
	trc, err := obs.TracerFromFlags(p.traceOut, p.traceFormat, p.traceFilter)
	if err != nil {
		return err
	}
	faultCfg, err := fault.ParseSpec(p.faults)
	if err != nil {
		return err
	}
	chaosCfg, err := chaos.ParseSpec(p.chaos)
	if err != nil {
		return err
	}
	if p.spinBudget < 0 {
		return fmt.Errorf("negative spin budget %v", p.spinBudget)
	}
	if p.prefetchThrottle < 0 || p.prefetchThrottle > 1 {
		return fmt.Errorf("prefetch-throttle %v outside [0,1]", p.prefetchThrottle)
	}
	opts := core.Options{
		Scale:         p.scale,
		Cores:         p.cores,
		Tracer:        trc,
		GaugeInterval: sim.Time(p.gaugeEvery.Nanoseconds()),
		Fault:         faultCfg,
		Chaos:         chaosCfg,
		SpinBudget:    sim.Time(p.spinBudget.Nanoseconds()),
		ITS:           policy.ITSConfig{PrefetchThrottleFraction: p.prefetchThrottle},
	}
	needGrid := false
	switch p.exp {
	case "obs", "setup", "xover", "spin", "sens", "fleet":
	case "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "all":
		needGrid = true
	default:
		return fmt.Errorf("unknown experiment %q", p.exp)
	}

	var doc *jsonDoc
	if p.format == "json" {
		doc = &jsonDoc{SchemaVersion: docSchemaVersion, Scale: p.scale}
	}

	err = runExperiments(p.exp, needGrid, opts, p.format, doc)
	if cerr := trc.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("finalizing trace: %w", cerr)
	}
	if err != nil {
		return err
	}
	if doc != nil {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	return nil
}

func runExperiments(exp string, needGrid bool, opts core.Options, format string, doc *jsonDoc) error {
	var grid []core.GridResult
	if needGrid {
		var err error
		grid, err = core.RunGrid(opts)
		if err != nil {
			return err
		}
		if doc != nil {
			for _, gr := range grid {
				for _, k := range policy.Kinds() {
					doc.Runs = append(doc.Runs, gr.Runs[k].Summary())
				}
			}
		}
	}

	show := func(name string) bool { return exp == "all" || exp == name }

	if show("setup") {
		if err := printSetup(opts, format, doc); err != nil {
			return err
		}
	}
	if show("obs") {
		if err := printObservation(opts, format, doc); err != nil {
			return err
		}
	}
	figures := []struct {
		name   string
		title  string
		metric core.Metric
		norm   bool
	}{
		{"fig4a", "Figure 4a — Normalized Total CPU Idle (Waiting) Time (×, ITS = 1.00)", core.MetricIdle, true},
		{"fig4b", "Figure 4b — Numbers of Page Faults (unit: 100 thousands)",
			func(r *metrics.Run) float64 { return float64(r.TotalMajorFaults()) / 100_000 }, false},
		{"fig4c", "Figure 4c — Numbers of CPU Cache Misses (unit: millions)",
			func(r *metrics.Run) float64 { return float64(r.TotalLLCMisses()) / 1_000_000 }, false},
		{"fig5a", "Figure 5a — Normalized Finish Time, Top 50% Priority (×, ITS = 1.00)", core.MetricTopFinish, true},
		{"fig5b", "Figure 5b — Normalized Finish Time, Bottom 50% Priority (×, ITS = 1.00)", core.MetricBottomFinish, true},
	}
	for _, fig := range figures {
		if !show(fig.name) {
			continue
		}
		if err := printFigure(grid, fig.name, fig.title, fig.metric, fig.norm, format, doc); err != nil {
			return err
		}
	}
	if show("xover") {
		if err := printCrossover(opts, format, doc); err != nil {
			return err
		}
	}
	if show("spin") {
		if err := printSpin(opts, format, doc); err != nil {
			return err
		}
	}
	if show("sens") {
		if err := printSensitivity(opts, format, doc); err != nil {
			return err
		}
	}
	// The fleet sweep is opt-in only: it extends the paper rather than
	// reproducing a figure, and folding it into "all" would change the
	// byte layout of every frozen `-exp all` regression document.
	if exp == "fleet" {
		if err := printFleet(opts, format, doc); err != nil {
			return err
		}
	}
	return nil
}

func printSensitivity(opts core.Options, format string, doc *jsonDoc) error {
	res, err := core.RunSensitivity("1_Data_Intensive", 5, opts)
	if err != nil {
		return err
	}
	if doc != nil {
		doc.Sensitivity = res
		return nil
	}
	t := report.NewTable("Priority-draw sensitivity — normalized idle over 5 random draws (1_Data_Intensive)",
		"policy", "min", "mean", "max")
	for _, r := range res {
		t.AddRowf(r.Policy.String(), r.Min, r.Mean, r.Max)
	}
	return emit(t, format)
}

func printSpin(opts core.Options, format string, doc *jsonDoc) error {
	pts, err := core.RunSpinSweep(opts, nil)
	if err != nil {
		return err
	}
	if doc != nil {
		doc.Spin = pts
		return nil
	}
	if format == "chart" {
		var bars []report.Bar
		for _, pt := range pts {
			bars = append(bars, report.Bar{Label: pt.Name, Value: pt.IdleVsITS})
		}
		return report.BarChart(os.Stdout,
			"Hybrid polling vs ITS — normalized total CPU idle time (ITS = 1.00)", bars, 40)
	}
	t := report.NewTable("Hybrid polling vs ITS — 2_Data_Intensive (extension experiment)",
		"policy", "idle", "makespan", "idle vs ITS")
	for _, pt := range pts {
		t.AddRow(pt.Name, pt.Idle.String(), pt.Makespan.String(), fmt.Sprintf("%.2f", pt.IdleVsITS))
	}
	return emit(t, format)
}

func printFigure(grid []core.GridResult, name, title string, metric core.Metric, normalized bool, format string, doc *jsonDoc) error {
	value := func(gr core.GridResult, k policy.Kind) float64 {
		if normalized {
			return gr.Normalized(metric, policy.ITS)[k]
		}
		return metric(gr.Runs[k])
	}
	if doc != nil {
		if doc.Figures == nil {
			doc.Figures = make(map[string]map[string]map[string]float64)
		}
		fig := make(map[string]map[string]float64, len(grid))
		for _, gr := range grid {
			row := make(map[string]float64, len(policy.Kinds()))
			for _, k := range policy.Kinds() {
				row[k.String()] = value(gr, k)
			}
			fig[gr.Batch.Name] = row
		}
		doc.Figures[name] = fig
		return nil
	}
	if format == "chart" {
		groups := make([]string, 0, len(grid))
		series := make(map[string][]report.Bar, len(grid))
		for _, gr := range grid {
			groups = append(groups, gr.Batch.Name)
			var bars []report.Bar
			for _, k := range policy.Kinds() {
				bars = append(bars, report.Bar{Label: k.String(), Value: value(gr, k)})
			}
			series[gr.Batch.Name] = bars
		}
		return report.GroupedBarChart(os.Stdout, title, groups, series, 40)
	}
	header := []string{"batch"}
	for _, k := range policy.Kinds() {
		header = append(header, k.String())
	}
	t := report.NewTable(title, header...)
	for _, gr := range grid {
		row := []any{gr.Batch.Name}
		for _, k := range policy.Kinds() {
			row = append(row, value(gr, k))
		}
		t.AddRowf(row...)
	}
	return emit(t, format)
}

// measuredSyncWait runs the 2_Data_Intensive batch under plain Sync and
// returns its per-fault busy-wait distribution — the measured counterpart of
// the §4.1 constants, with the tail (p99) reported alongside the mean
// because queueing behind prefetches and channel contention make the tail,
// not the mean, the number that decides whether busy-waiting stays cheaper
// than the 7 µs switch.
func measuredSyncWait(opts core.Options) (*metrics.Histogram, error) {
	b, err := workload.BatchByName("2_Data_Intensive")
	if err != nil {
		return nil, err
	}
	run, err := core.RunBatch(b, policy.Sync, opts)
	if err != nil {
		return nil, err
	}
	return run.SyncWaitHist, nil
}

func printSetup(opts core.Options, format string, doc *jsonDoc) error {
	dev := storage.DefaultConfig()
	sw, err := measuredSyncWait(opts)
	if err != nil {
		return err
	}
	syncWait := fmt.Sprintf("mean %v, p50 ≤ %v, p99 ≤ %v, max %v (n=%d, Sync on 2_Data_Intensive)",
		sw.Mean(), sw.Quantile(0.5), sw.Quantile(0.99), sw.Max(), sw.Count())
	rows := [][2]string{
		{"LLC", "8 MB, 16-way, 64 B lines (half becomes pre-execute cache for Sync_Runahead/ITS)"},
		{"Context switch", kernel.ContextSwitchCost.String()},
		{"DRAM access", "50ns"},
		{"ULL device read", fmt.Sprintf("%v (write %v, %d channels)", dev.ReadLatency, dev.WriteLatency, dev.Channels)},
		{"PCIe", "4 lanes × 3.983 GB/s"},
		{"Time slices", fmt.Sprintf("%v (highest prio) … %v (lowest), SCHED_RR", sched.MaxSlice, sched.MinSlice)},
		{"Page size", "4 KiB, 4-level page table"},
		{"Sync fault wait (measured)", syncWait},
	}
	if doc != nil {
		doc.Setup = make(map[string]string, len(rows))
		for _, r := range rows {
			doc.Setup[r[0]] = r[1]
		}
		return nil
	}
	t := report.NewTable("Table — §4.1 evaluation setup (simulated platform constants)", "constant", "value")
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return emit(t, format)
}

func printObservation(opts core.Options, format string, doc *jsonDoc) error {
	pts, err := core.RunObservation(opts)
	if err != nil {
		return err
	}
	if doc != nil {
		doc.Observation = pts
		return nil
	}
	base := pts[0].IdleTime
	if format == "chart" {
		var bars []report.Bar
		for _, pt := range pts {
			bars = append(bars, report.Bar{
				Label: fmt.Sprintf("%d processes", pt.Processes),
				Value: float64(pt.IdleTime) / float64(base),
			})
		}
		return report.BarChart(os.Stdout,
			"§2.2 observation — CPU idle time vs process count (normalized to 2 processes)", bars, 40)
	}
	t := report.NewTable("§2.2 observation — CPU idle time vs process count (Sync mode, normalized to 2 processes)",
		"processes", "idle time", "normalized", "idle fraction")
	for _, pt := range pts {
		norm := 0.0
		if base > 0 {
			norm = float64(pt.IdleTime) / float64(base)
		}
		t.AddRow(fmt.Sprint(pt.Processes), pt.IdleTime.String(),
			fmt.Sprintf("%.2f×", norm), fmt.Sprintf("%.1f%%", 100*pt.IdleFraction))
	}
	return emit(t, format)
}

func printCrossover(opts core.Options, format string, doc *jsonDoc) error {
	pts, err := core.RunCrossover(opts, nil)
	if err != nil {
		return err
	}
	if doc != nil {
		doc.Crossover = pts
		return nil
	}
	if format == "chart" {
		var bars []report.Bar
		for _, pt := range pts {
			bars = append(bars, report.Bar{
				Label: fmt.Sprintf("%4d KiB sync/async", pt.IOBytes/1024),
				Value: pt.SyncMakespan.Seconds() / pt.AsyncMakespan.Seconds(),
			})
		}
		return report.BarChart(os.Stdout,
			"Huge-I/O crossover — Sync/Async makespan ratio (>1 ⇒ Async wins)", bars, 40)
	}
	t := report.NewTable("Huge-I/O crossover — Sync vs Async as the swap-in unit grows (§1 motivation)",
		"I/O unit", "Sync makespan", "Async makespan", "Sync idle", "Async idle", "winner")
	for _, pt := range pts {
		t.AddRow(fmt.Sprintf("%d KiB", pt.IOBytes/1024),
			pt.SyncMakespan.String(), pt.AsyncMakespan.String(),
			pt.SyncIdle.String(), pt.AsyncIdle.String(), pt.Winner)
	}
	return emit(t, format)
}
