package main

import (
	"encoding/json"
	"reflect"
	"testing"

	"itsim/internal/metrics"
)

// FuzzDiffDocs: arbitrary pairs of JSON documents must never panic the
// `itsbench diff` comparator, its output must be deterministic, and — for
// documents without duplicate run keys, which real itsbench output never
// has — a document must never drift against itself.
func FuzzDiffDocs(f *testing.F) {
	seed := `{"figures":{"fig6":{"4":{"its":1.5,"sync":2}}},` +
		`"runs":[{"policy":"its","batch":"4","makespan_ns":100,"avg_finish_ns":40}]}`
	f.Add(seed, seed, 0.0)
	f.Add(seed, `{}`, 0.0)
	f.Add(`{}`, seed, 0.05)
	f.Add(`{"figures":{"fig7":{"8":{"its":3}}}}`,
		`{"figures":{"fig7":{"8":{"its":3.0001}}}}`, 0.01)
	f.Add(`{"runs":[{"policy":"its","batch":"4"},{"policy":"sync","batch":"4"}]}`,
		`{"runs":[{"policy":"its","batch":"4"}]}`, 0.0)
	f.Fuzz(func(t *testing.T, oldJSON, newJSON string, tol float64) {
		var oldDoc, newDoc jsonDoc
		if json.Unmarshal([]byte(oldJSON), &oldDoc) != nil {
			return
		}
		if json.Unmarshal([]byte(newJSON), &newDoc) != nil {
			return
		}
		drifts := diffDocs(&oldDoc, &newDoc, tol)
		if again := diffDocs(&oldDoc, &newDoc, tol); !reflect.DeepEqual(drifts, again) {
			t.Fatalf("diffDocs is not deterministic:\n%v\nvs\n%v", drifts, again)
		}
		// Self-comparison is only well-defined without duplicate run keys
		// (the comparator indexes runs by policy/batch).
		if hasDupRunKeys(oldDoc.Runs) {
			return
		}
		if self := diffDocs(&oldDoc, &oldDoc, tol); len(self) != 0 {
			t.Fatalf("document drifts against itself: %v", self)
		}
	})
}

func hasDupRunKeys(runs []metrics.Summary) bool {
	type runKey struct{ policy, batch string }
	seen := make(map[runKey]bool, len(runs))
	for _, r := range runs {
		k := runKey{r.Policy, r.Batch}
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}
