package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"itsim/internal/core"
	"itsim/internal/policy"
	"itsim/internal/workload"
)

// PerfPoint is one row of the `itsbench perf` trajectory: a fixed
// policy/core-count configuration with both its deterministic virtual-time
// outcome (Records, MakespanNs — must match the snapshot exactly) and its
// host-dependent throughput (WallNs, RecordsPerSec — compared only under
// -perf-tolerance, since wall time varies by machine and load).
type PerfPoint struct {
	Policy        string  `json:"policy"`
	Cores         int     `json:"cores"`
	Records       uint64  `json:"records"`
	MakespanNs    int64   `json:"makespan_ns"`
	WallNs        int64   `json:"wall_ns"`
	RecordsPerSec float64 `json:"records_per_sec"`
	// RecordsPerWallSecPerCore normalizes host throughput by simulated
	// core count, so multi-core coordinator overhead shows up as a drop
	// in this column even when aggregate records_per_sec climbs (the
	// BENCH_1 anomaly was the aggregate itself dropping at 4 cores).
	// Absent (0) in snapshots taken before the field existed.
	RecordsPerWallSecPerCore float64 `json:"records_per_wall_sec_per_core,omitempty"`
}

// perfConfigs is the fixed grid the trajectory tracks: the two policies the
// paper contrasts (plain Sync vs ITS), single-core and 4-core SMP.
func perfConfigs() []struct {
	kind  policy.Kind
	cores int
} {
	return []struct {
		kind  policy.Kind
		cores int
	}{
		{policy.Sync, 1},
		{policy.Sync, 4},
		{policy.ITS, 1},
		{policy.ITS, 4},
	}
}

// perfMain is the `itsbench perf` subcommand: it runs the fixed perf grid
// and writes a snapshot document (BENCH_<n>.json in the repo root is the
// committed trajectory; CI diffs fresh runs against it). Exit status: 0 on
// success, 2 on usage or run errors.
//
//	itsbench perf -o BENCH_1.json
//	itsbench perf | itsbench diff -perf-tolerance 0.4 BENCH_1.json /dev/stdin
func perfMain(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("perf", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	outPath := fs.String("o", "", "write the snapshot to this file (empty = stdout)")
	scale := fs.Float64("scale", 0.02, "workload scale factor")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: itsbench perf [-o BENCH.json] [-scale frac]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	doc := &jsonDoc{SchemaVersion: docSchemaVersion, Scale: *scale}
	b := workload.Batches()[1]
	for _, cfg := range perfConfigs() {
		start := time.Now()
		run, err := core.RunBatch(b, cfg.kind, core.Options{Scale: *scale, Cores: cfg.cores})
		if err != nil {
			fmt.Fprintln(os.Stderr, "itsbench perf:", err)
			return 2
		}
		wall := time.Since(start)
		var records uint64
		for _, p := range run.Procs {
			records += p.Instructions
		}
		pt := PerfPoint{
			Policy:     cfg.kind.String(),
			Cores:      cfg.cores,
			Records:    records,
			MakespanNs: int64(run.Makespan),
			WallNs:     wall.Nanoseconds(),
		}
		if s := wall.Seconds(); s > 0 {
			pt.RecordsPerSec = float64(records) / s
			pt.RecordsPerWallSecPerCore = pt.RecordsPerSec / float64(cfg.cores)
		}
		doc.Perf = append(doc.Perf, pt)
	}

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itsbench perf:", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "itsbench perf:", err)
		return 2
	}
	return 0
}

// diffPerf compares the perf trajectories of two documents. Deterministic
// fields (records, makespan_ns) obey tol like every other metric;
// wall-clock fields (wall_ns, records_per_sec) are host-dependent and only
// compared when perfTol >= 0.
func diffPerf(oldDoc, newDoc *jsonDoc, tol, perfTol float64) []string {
	var drifts []string
	report := func(name string, a, b float64, t float64) {
		if !withinTolerance(a, b, t) {
			drifts = append(drifts, fmt.Sprintf("%s: %v -> %v (%+.3g%%)",
				name, a, b, relDrift(a, b)*100))
		}
	}
	type key struct {
		policy string
		cores  int
	}
	oldPts := make(map[key]PerfPoint, len(oldDoc.Perf))
	for _, pt := range oldDoc.Perf {
		oldPts[key{pt.Policy, pt.Cores}] = pt
	}
	seen := make(map[key]bool, len(newDoc.Perf))
	for _, pt := range newDoc.Perf {
		k := key{pt.Policy, pt.Cores}
		seen[k] = true
		o, ok := oldPts[k]
		if !ok {
			drifts = append(drifts, fmt.Sprintf("perf/%s/cores=%d: only in new document", pt.Policy, pt.Cores))
			continue
		}
		prefix := fmt.Sprintf("perf/%s/cores=%d/", pt.Policy, pt.Cores)
		report(prefix+"records", float64(o.Records), float64(pt.Records), tol)
		report(prefix+"makespan_ns", float64(o.MakespanNs), float64(pt.MakespanNs), tol)
		if perfTol >= 0 {
			report(prefix+"wall_ns", float64(o.WallNs), float64(pt.WallNs), perfTol)
			report(prefix+"records_per_sec", o.RecordsPerSec, pt.RecordsPerSec, perfTol)
			// Only compare the per-core column when both snapshots
			// carry it (BENCH_1 predates the field).
			if o.RecordsPerWallSecPerCore > 0 && pt.RecordsPerWallSecPerCore > 0 {
				report(prefix+"records_per_wall_sec_per_core",
					o.RecordsPerWallSecPerCore, pt.RecordsPerWallSecPerCore, perfTol)
			}
		}
	}
	for _, pt := range oldDoc.Perf {
		if !seen[key{pt.Policy, pt.Cores}] {
			drifts = append(drifts, fmt.Sprintf("perf/%s/cores=%d: missing from new document", pt.Policy, pt.Cores))
		}
	}
	return drifts
}
