package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runPerf(t *testing.T, args ...string) *jsonDoc {
	t.Helper()
	var out bytes.Buffer
	if code := perfMain(args, &out); code != 0 {
		t.Fatalf("perf exited %d", code)
	}
	var doc jsonDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("perf output not JSON: %v\n%s", err, out.String())
	}
	return &doc
}

func TestPerfSnapshotShape(t *testing.T) {
	doc := runPerf(t, "-scale", "0.02")
	if len(doc.Perf) != len(perfConfigs()) {
		t.Fatalf("%d perf points, want %d", len(doc.Perf), len(perfConfigs()))
	}
	for i, pt := range doc.Perf {
		cfg := perfConfigs()[i]
		if pt.Policy != cfg.kind.String() || pt.Cores != cfg.cores {
			t.Fatalf("point %d is %s/cores=%d, want %s/cores=%d",
				i, pt.Policy, pt.Cores, cfg.kind, cfg.cores)
		}
		if pt.Records == 0 || pt.MakespanNs <= 0 {
			t.Fatalf("point %d has empty deterministic fields: %+v", i, pt)
		}
		if pt.WallNs <= 0 || pt.RecordsPerSec <= 0 {
			t.Fatalf("point %d has empty wall-clock fields: %+v", i, pt)
		}
	}
}

func TestPerfDeterministicFieldsStable(t *testing.T) {
	a := runPerf(t, "-scale", "0.02")
	b := runPerf(t, "-scale", "0.02")
	if drifts := diffPerf(a, b, 0, -1); len(drifts) != 0 {
		t.Fatalf("deterministic perf fields drifted across identical runs:\n%s",
			strings.Join(drifts, "\n"))
	}
}

func TestPerfDiffCatchesMakespanDrift(t *testing.T) {
	a := runPerf(t, "-scale", "0.02")
	b := runPerf(t, "-scale", "0.02")
	b.Perf[0].MakespanNs++
	drifts := diffPerf(a, b, 0, -1)
	if len(drifts) != 1 || !strings.Contains(drifts[0], "makespan_ns") {
		t.Fatalf("drifts %v, want exactly the perturbed makespan", drifts)
	}
	// Wall-clock drift is only reported under a non-negative perf tolerance.
	b.Perf[0].MakespanNs--
	b.Perf[0].WallNs *= 1000
	if drifts := diffPerf(a, b, 0, -1); len(drifts) != 0 {
		t.Fatalf("wall drift reported despite -perf-tolerance skip: %v", drifts)
	}
	if drifts := diffPerf(a, b, 0, 0.5); len(drifts) == 0 {
		t.Fatal("1000x wall drift not reported under perf tolerance 0.5")
	}
}

func TestPerfWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	if code := perfMain([]string{"-scale", "0.02", "-o", path}, &out); code != 0 {
		t.Fatalf("perf -o exited %d", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc jsonDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("snapshot file not JSON: %v", err)
	}
	if len(doc.Perf) == 0 {
		t.Fatal("snapshot file has no perf points")
	}
}

// TestPerfDiffAgainstCommittedSnapshot is the CI regression gate: a fresh
// perf run's deterministic fields must match the committed BENCH_1.json
// exactly (wall-clock fields are skipped by default).
func TestPerfDiffAgainstCommittedSnapshot(t *testing.T) {
	snap, err := loadDoc("../../BENCH_1.json")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Scale <= 0 || len(snap.Perf) == 0 {
		t.Fatalf("committed snapshot malformed: %+v", snap)
	}
	fresh := runPerf(t, "-scale", "0.02")
	if drifts := diffPerf(snap, fresh, 0, -1); len(drifts) != 0 {
		t.Fatalf("perf trajectory drifted from committed BENCH_1.json:\n%s",
			strings.Join(drifts, "\n"))
	}
}
