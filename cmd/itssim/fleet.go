package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"itsim/internal/chaos"
	"itsim/internal/cluster"
	"itsim/internal/fault"
	"itsim/internal/metrics"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/sim"
)

const fleetUsage = `usage: itssim fleet [flags]

Run a fleet of simulated machines serving multi-tenant open-loop request
traffic under one I/O-mode policy and one routing policy, and report
per-tenant latency and SLO attainment.

Tenant specs are ';'-separated lists of comma-separated key=value pairs:
  name, bench, rate (req/s), requests (alias req), prio, scale,
  pattern (steady|diurnal|bursty|multiperiod), period, amp, slo, seed,
  deadline (per-attempt timeout), retries, hedge (true/false)
e.g. -tenants 'name=web,bench=pagerank,rate=4e5,req=16,slo=20ms;bench=caffe,req=8'

Routing policies: round-robin, least-loaded, locality, health.

Chaos specs (-chaos) are comma-separated key=value pairs:
  seed, crashr/crashd (hard crashes: rate per virtual second per machine,
  down window), warm/warmx (post-down cache-cold warm-up window and
  slowdown), brownr/brownd/brownx (brownout rate, window, slowdown),
  flapr/flapd (graceful leave/rejoin rate and off window)
e.g. -chaos 'seed=1,crashr=20,crashd=2ms,brownr=40,brownx=4'

flags:
`

// fleetMain is the `itssim fleet` entry point. Exit codes: 0 success,
// 1 run error, 2 usage error.
func fleetMain(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("itssim fleet", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.Usage = func() {
		fmt.Fprint(out, fleetUsage)
		fs.PrintDefaults()
	}
	var (
		machines         = fs.Int("machines", 3, "number of simulated machines in the fleet")
		slots            = fs.Int("slots", 0, "max requests batched into one machine epoch (0 = default)")
		tenants          = fs.String("tenants", "bench=caffe,req=8,prio=3,slo=50ms;bench=pagerank,req=8,prio=1", "tenant spec (see above)")
		routing          = fs.String("routing", cluster.RoundRobin, "routing policy: "+strings.Join(cluster.RouterNames(), "|"))
		policyName       = fs.String("policy", "ITS", "I/O-mode policy every machine runs")
		seed             = fs.Uint64("seed", 0, "fleet seed perturbing every tenant's trace and arrival streams (0 = pinned defaults)")
		scale            = fs.Float64("scale", 1.0, "multiplier on every tenant's per-request workload scale")
		cores            = fs.Int("cores", 0, "per-machine core count (0/1 = single-core; >1 = SMP)")
		format           = fs.String("format", "text", "summary format: text|json")
		verbose          = fs.Bool("v", false, "per-epoch detail")
		traceOut         = fs.String("trace-out", "", "write the fleet event trace to this file (empty = off)")
		traceFormat      = fs.String("trace-format", "chrome", "trace format: chrome|jsonl")
		traceFilter      = fs.String("trace-filter", "", "comma-separated event types and pid=N entries (empty = all)")
		gaugeEvery       = fs.Duration("gauge-interval", 0, "virtual-time gauge sampling interval inside epochs (0 = off)")
		faults           = fs.String("faults", "", "device fault-injection spec applied to every machine (seed mixed per machine)")
		chaosSpec        = fs.String("chaos", "", "machine-level chaos spec: crashes, brownouts, flapping (see above)")
		shedDepth        = fs.Int("shed", 0, "fleet queue-depth threshold above which non-top-priority arrivals are shed (0 = off)")
		spinBudget       = fs.Duration("spin-budget", 0, "demote synchronous waits predicted to exceed this budget (0 = off)")
		prefetchThrottle = fs.Float64("prefetch-throttle", 0, "ITS prefetch admission threshold on busy channels (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(out, "itssim fleet: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if err := runFleet(out, fleetParams{
		machines: *machines, slots: *slots, tenants: *tenants, routing: *routing,
		policy: *policyName, seed: *seed, scale: *scale, cores: *cores,
		format: *format, verbose: *verbose,
		traceOut: *traceOut, traceFormat: *traceFormat, traceFilter: *traceFilter,
		gaugeEvery: *gaugeEvery, faults: *faults, chaos: *chaosSpec, shed: *shedDepth,
		spinBudget: *spinBudget, prefetchThrottle: *prefetchThrottle,
	}); err != nil {
		fmt.Fprintln(out, "itssim fleet:", err)
		return 1
	}
	return 0
}

type fleetParams struct {
	machines, slots  int
	tenants, routing string
	policy           string
	seed             uint64
	scale            float64
	cores            int
	format           string
	verbose          bool
	traceOut         string
	traceFormat      string
	traceFilter      string
	gaugeEvery       time.Duration
	faults           string
	chaos            string
	shed             int
	spinBudget       time.Duration
	prefetchThrottle float64
}

func runFleet(out io.Writer, p fleetParams) error {
	if p.format != "text" && p.format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", p.format)
	}
	kind, err := policy.KindByName(p.policy)
	if err != nil {
		return err
	}
	specs, err := cluster.ParseTenantSpec(p.tenants)
	if err != nil {
		return err
	}
	faultCfg, err := fault.ParseSpec(p.faults)
	if err != nil {
		return err
	}
	chaosCfg, err := chaos.ParseSpec(p.chaos)
	if err != nil {
		return err
	}
	if p.shed < 0 {
		return fmt.Errorf("negative shed depth %d", p.shed)
	}
	if p.spinBudget < 0 {
		return fmt.Errorf("negative spin budget %v", p.spinBudget)
	}
	if p.prefetchThrottle < 0 || p.prefetchThrottle > 1 {
		return fmt.Errorf("prefetch-throttle %v outside [0,1]", p.prefetchThrottle)
	}
	trc, err := obs.TracerFromFlags(p.traceOut, p.traceFormat, p.traceFilter)
	if err != nil {
		return err
	}
	cfg := cluster.Config{
		Machines:      p.machines,
		Slots:         p.slots,
		Policy:        kind,
		ITS:           policy.ITSConfig{PrefetchThrottleFraction: p.prefetchThrottle},
		Routing:       p.routing,
		Tenants:       specs,
		Scale:         p.scale,
		Seed:          p.seed,
		Cores:         p.cores,
		Fault:         faultCfg,
		Chaos:         chaosCfg,
		ShedDepth:     p.shed,
		SpinBudget:    sim.Time(p.spinBudget.Nanoseconds()),
		Tracer:        trc,
		GaugeInterval: sim.Time(p.gaugeEvery.Nanoseconds()),
	}
	res, err := cluster.Run(cfg)
	if cerr := trc.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("finalizing trace: %w", cerr)
	}
	if err != nil {
		return err
	}

	if p.format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res.Summary)
	}
	writeFleetText(out, res, p.verbose)
	return nil
}

// writeFleetText renders the fleet summary: header, per-tenant serving
// table, per-machine utilization table, optional per-epoch detail.
func writeFleetText(out io.Writer, res *cluster.Result, verbose bool) {
	s := res.Summary
	fmt.Fprintf(out, "fleet policy=%s routing=%s machines=%d slots=%d\n",
		s.Policy, s.Routing, s.Machines, s.Slots)
	fmt.Fprintf(out, "  makespan   %v\n", sim.Time(s.MakespanNs))
	fmt.Fprintf(out, "  requests   %d submitted, %d completed\n", s.Requests, s.Completed)
	if inj := s.Injection; inj != nil {
		fmt.Fprintf(out, "  injected   tail=%d stall=%d dma=%d (retries %d)\n",
			inj.TailSpikes, inj.ChannelStalls, inj.DMAFailures, inj.DMARetries)
	}
	if ch := s.Chaos; ch != nil {
		fmt.Fprintf(out, "  chaos      crash=%d flap=%d brownout=%d rehomed=%d\n",
			ch.Crashes, ch.Flaps, ch.Brownouts, ch.Rehomed)
		fmt.Fprintf(out, "  resilience timeout=%d retry=%d hedge=%d (won %d) shed=%d failed=%d\n",
			ch.Timeouts, ch.Retries, ch.Hedges, ch.HedgeWins, ch.Shed, ch.Failed)
	}

	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  tenant\tbench\treq\tp50-lat\tp99-lat\tp50-syncwait\tp99-syncwait\tslo\tattained")
	for _, t := range s.Tenants {
		fmt.Fprintf(w, "  %s\t%s\t%d\t%v\t%v\t%v\t%v\t%s\t%s\n",
			t.Name, t.Bench, t.Completed,
			sim.Time(t.Latency.P50Ns), sim.Time(t.Latency.P99Ns),
			sim.Time(t.SyncWait.P50Ns), sim.Time(t.SyncWait.P99Ns),
			sloString(t), attainString(t))
	}
	w.Flush()

	w = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  machine\tepochs\treq\tbusy\tidle\twaiting\tstolen\tmajflt\tdemoted")
	for _, m := range s.PerMachine {
		fmt.Fprintf(w, "  %d\t%d\t%d\t%v\t%v\t%v\t%v\t%d\t%d\n",
			m.ID, m.Epochs, m.Requests, sim.Time(m.BusyNs), sim.Time(m.IdleNs),
			sim.Time(m.WaitingNs), sim.Time(m.StolenNs), m.MajorFaults, m.DemotedWaits)
	}
	w.Flush()

	if verbose {
		w = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  epoch\tprocs\tmakespan\tidle\tstolen\tmajflt")
		for _, run := range res.Epochs {
			fmt.Fprintf(w, "  %s\t%d\t%v\t%v\t%v\t%d\n",
				run.Batch, len(run.Procs), run.Makespan, run.TotalIdle(),
				run.TotalStolen(), run.TotalMajorFaults())
		}
		w.Flush()
	}
}

// sloString renders the tenant's objective, "-" when none was set.
func sloString(t metrics.TenantStats) string {
	if t.SLONs <= 0 {
		return "-"
	}
	return sim.Time(t.SLONs).String()
}

// attainString renders SLO attainment, "-" when no SLO was set.
func attainString(t metrics.TenantStats) string {
	if t.SLONs <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*t.SLOAttainment)
}
