package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"itsim/internal/core"
	"itsim/internal/fault"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/replay"
	"itsim/internal/sim"
	"itsim/internal/workload"
)

// writeFaultyTrace runs an identically-configured faulty ITS batch and
// writes its JSONL trace plus JSON summary under dir.
func writeFaultyTrace(t *testing.T, dir, stem string) (trace, summary string) {
	t.Helper()
	trace = filepath.Join(dir, stem+".jsonl")
	summary = filepath.Join(dir, stem+".json")
	f, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	trc := obs.NewTracer(obs.NewJSONL(f), obs.Filter{})
	run, err := core.RunBatch(workload.Batches()[1], policy.ITS, core.Options{
		Scale: 0.02, Cores: 2, Tracer: trc,
		Fault:      fault.Config{Seed: 42, TailProb: 0.2, TailMult: 16, StallProb: 0.01, DMAFailProb: 0.05},
		SpinBudget: 4 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := trc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(run.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(summary, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return trace, summary
}

func TestObserveDeterministicAttributeAndDiff(t *testing.T) {
	dir := t.TempDir()
	traceA, sumA := writeFaultyTrace(t, dir, "a")
	traceB, _ := writeFaultyTrace(t, dir, "b")

	// Identically-seeded runs: byte-identical attribute output...
	var outA, outB bytes.Buffer
	if code := observeMain([]string{"attribute", traceA}, &outA); code != 0 {
		t.Fatalf("attribute A exited %d", code)
	}
	if code := observeMain([]string{"attribute", traceB}, &outB); code != 0 {
		t.Fatalf("attribute B exited %d", code)
	}
	if outA.Len() == 0 || !bytes.Equal(outA.Bytes(), outB.Bytes()) {
		t.Fatal("attribute output of identically-seeded runs not byte-identical")
	}

	// ...an empty diff with exit code 0...
	var dout bytes.Buffer
	if code := observeMain([]string{"diff", traceA, traceB}, &dout); code != 0 {
		t.Fatalf("diff of identical traces exited %d:\n%s", code, dout.String())
	}
	if !strings.Contains(dout.String(), "traces identical") {
		t.Fatalf("diff report: %s", dout.String())
	}

	// ...and a zero-tolerance reconciliation against the run summary.
	var cout bytes.Buffer
	if code := observeMain([]string{"attribute", "-format", "json", "-check", sumA, traceA}, &cout); code != 0 {
		t.Fatalf("attribute -check exited %d", code)
	}
	if !strings.Contains(cout.String(), "reconciles") {
		t.Fatalf("check output: %s", cout.String())
	}
	var att replay.Attribution
	rest := cout.String()[strings.Index(cout.String(), "{"):]
	if err := json.Unmarshal([]byte(rest), &att); err != nil {
		t.Fatalf("attribute -format json output not JSON: %v", err)
	}
	if len(att.Runs) != 1 || len(att.Runs[0].Cores) != 2 {
		t.Fatalf("unexpected attribution shape: %+v", att.Runs)
	}
}

func TestObservePerturbationLocalized(t *testing.T) {
	dir := t.TempDir()
	traceA, _ := writeFaultyTrace(t, dir, "a")

	data, err := os.ReadFile(traceA)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := replay.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	idx := len(evs) / 2
	evs[idx].Dur += 5
	traceB := filepath.Join(dir, "b.jsonl")
	f, err := os.Create(traceB)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONL(f)
	for _, ev := range evs {
		sink.Write(ev)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	code := observeMain([]string{"diff", traceA, traceB}, &out)
	if code != 1 {
		t.Fatalf("diff of perturbed trace exited %d, want 1:\n%s", code, out.String())
	}
	want := "first divergence at event #" + strconv.Itoa(idx)
	if !strings.Contains(out.String(), want) {
		t.Fatalf("report does not localize the perturbation (%s):\n%s", want, out.String())
	}
}

func TestObserveTimeline(t *testing.T) {
	dir := t.TempDir()
	trace, _ := writeFaultyTrace(t, dir, "a")
	var out bytes.Buffer
	if code := observeMain([]string{"timeline", "-bucket", "1ms", trace}, &out); code != 0 {
		t.Fatalf("timeline exited %d", code)
	}
	if !strings.Contains(out.String(), "syncwait_p99") {
		t.Fatalf("timeline output missing percentile column:\n%s", out.String())
	}
}

func TestObserveUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code := observeMain(nil, &out); code != 2 {
		t.Fatalf("no args exited %d, want 2", code)
	}
	if code := observeMain([]string{"bogus"}, &out); code != 2 {
		t.Fatalf("unknown command exited %d, want 2", code)
	}
	if code := observeMain([]string{"attribute", filepath.Join(t.TempDir(), "missing.jsonl")}, &out); code != 2 {
		t.Fatalf("missing file exited %d, want 2", code)
	}
}

func TestObserveRejectsFutureSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "future.jsonl")
	if err := os.WriteFile(bad, []byte("{\"itsim_trace\":99}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := observeMain([]string{"attribute", bad}, &out); code != 2 {
		t.Fatalf("future schema exited %d, want 2", code)
	}
}
