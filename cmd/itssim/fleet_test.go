package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"itsim/internal/metrics"
)

const testTenants = "name=alpha,bench=caffe,req=3,prio=3,rate=2e5,slo=50ms;" +
	"name=beta,bench=pagerank,req=2,prio=1,rate=1e5"

func fleetArgs(extra ...string) []string {
	args := []string{
		"-machines", "2", "-slots", "2", "-scale", "0.5",
		"-tenants", testTenants,
	}
	return append(args, extra...)
}

func TestFleetMainText(t *testing.T) {
	var out bytes.Buffer
	if code := fleetMain(fleetArgs(), &out); code != 0 {
		t.Fatalf("exit code %d, output:\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"fleet policy=ITS routing=round-robin machines=2 slots=2",
		"5 submitted, 5 completed",
		"alpha", "beta", "p99-lat", "50.000ms",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
	// beta has no SLO: its attainment column must render as "-".
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "beta") && !strings.HasSuffix(strings.TrimRight(line, " "), "-") {
			t.Errorf("beta row should end with '-' SLO columns: %q", line)
		}
	}
}

func TestFleetMainJSON(t *testing.T) {
	var out bytes.Buffer
	if code := fleetMain(fleetArgs("-format", "json", "-routing", "least-loaded"), &out); code != 0 {
		t.Fatalf("exit code %d, output:\n%s", code, out.String())
	}
	var s metrics.FleetSummary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("json output did not parse: %v\n%s", err, out.String())
	}
	if s.Routing != "least-loaded" || s.Machines != 2 {
		t.Errorf("summary header wrong: %+v", s)
	}
	if s.Completed != 5 || len(s.Tenants) != 2 {
		t.Errorf("expected 5 completions over 2 tenants, got %+v", s)
	}
	for _, ten := range s.Tenants {
		if ten.Latency.Count != ten.Completed {
			t.Errorf("tenant %s: latency count %d != completed %d", ten.Name, ten.Latency.Count, ten.Completed)
		}
	}
}

// TestFleetMainDeterministic pins the CLI end to end: identical seeded
// invocations must produce byte-identical JSON, the property the CI
// fleet-determinism job asserts with cmp.
func TestFleetMainDeterministic(t *testing.T) {
	args := fleetArgs("-format", "json", "-seed", "11",
		"-faults", "seed=42,tailp=0.05,tailx=4,stallp=0.01,dmap=0.02")
	var a, b bytes.Buffer
	if code := fleetMain(args, &a); code != 0 {
		t.Fatalf("first run exit %d:\n%s", code, a.String())
	}
	if code := fleetMain(args, &b); code != 0 {
		t.Fatalf("second run exit %d:\n%s", code, b.String())
	}
	if a.String() != b.String() {
		t.Errorf("same-seed fleet runs diverged:\n%s\n---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "fault_injection") {
		t.Errorf("faulty run reported no injection stats:\n%s", a.String())
	}
}

// TestFleetGoldenByteInert re-runs the exact invocations that produced the
// committed pre-resilience goldens and requires byte-identical output: the
// whole resilience plane (chaos hooks, timers, routing eligibility, health
// tracking) must be invisible until a flag turns it on.
func TestFleetGoldenByteInert(t *testing.T) {
	const goldenTenants = "name=alpha,bench=caffe,req=4,prio=3,rate=2e5,pattern=diurnal,slo=50ms;" +
		"name=beta,bench=randomwalk,req=3,prio=1,rate=1e5,pattern=bursty"
	const goldenFaults = "seed=42,tailp=0.05,tailx=8,stallp=0.01,dmap=0.02"
	for _, routing := range []string{"round-robin", "least-loaded", "locality"} {
		for _, pol := range []string{"Sync", "ITS"} {
			want, err := os.ReadFile(filepath.Join("testdata", "golden",
				fmt.Sprintf("fleet_%s_%s.json", routing, pol)))
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			code := fleetMain([]string{
				"-machines", "3", "-slots", "2", "-scale", "0.25", "-seed", "7",
				"-routing", routing, "-policy", pol,
				"-tenants", goldenTenants, "-faults", goldenFaults,
				"-format", "json",
			}, &out)
			if code != 0 {
				t.Fatalf("%s/%s: exit %d:\n%s", routing, pol, code, out.String())
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("%s/%s: output diverged from pre-resilience golden", routing, pol)
			}
		}
	}
}

// TestFleetMainChaoticDeterministic: the full chaos + deadline + hedge +
// shed surface stays byte-deterministic through the CLI.
func TestFleetMainChaoticDeterministic(t *testing.T) {
	args := []string{
		"-machines", "3", "-slots", "2", "-scale", "0.5", "-seed", "11",
		"-routing", "health", "-shed", "12",
		"-tenants", "name=alpha,bench=caffe,req=4,prio=3,rate=2e5,slo=50ms,deadline=8ms,retries=2;" +
			"name=beta,bench=randomwalk,req=3,prio=1,rate=1e5,hedge=true",
		"-chaos", "seed=3,crashr=60,brownr=80,flapr=30",
		"-format", "json",
	}
	var a, b bytes.Buffer
	if code := fleetMain(args, &a); code != 0 {
		t.Fatalf("first run exit %d:\n%s", code, a.String())
	}
	if code := fleetMain(args, &b); code != 0 {
		t.Fatalf("second run exit %d:\n%s", code, b.String())
	}
	if a.String() != b.String() {
		t.Errorf("same-seed chaotic fleet runs diverged:\n%s\n---\n%s", a.String(), b.String())
	}
	var s metrics.FleetSummary
	if err := json.Unmarshal(a.Bytes(), &s); err != nil {
		t.Fatalf("chaotic json did not parse: %v", err)
	}
	if s.Chaos == nil {
		t.Fatalf("chaotic run reported no chaos stats:\n%s", a.String())
	}
	if s.Chaos.Crashes+s.Chaos.Flaps+s.Chaos.Brownouts == 0 {
		t.Errorf("chaos enabled but no machine events landed: %+v", s.Chaos)
	}

	// The text renderer surfaces the same counters.
	var text bytes.Buffer
	if code := fleetMain(append(args[:len(args)-2], "-format", "text"), &text); code != 0 {
		t.Fatalf("text run exit %d:\n%s", code, text.String())
	}
	for _, want := range []string{"chaos      crash=", "resilience timeout="} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("chaotic text output missing %q:\n%s", want, text.String())
		}
	}
}

func TestFleetMainBadInput(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":    {"-no-such-flag"},
		"positional args": fleetArgs("trailing"),
		"bad tenants":     {"-tenants", "bench=nope"},
		"bad routing":     fleetArgs("-routing", "magic"),
		"bad format":      fleetArgs("-format", "xml"),
		"bad policy":      fleetArgs("-policy", "Nope"),
		"bad machines":    fleetArgs("-machines", "0"),
		"bad throttle":    fleetArgs("-prefetch-throttle", "1.5"),
		"bad faults":      fleetArgs("-faults", "tailp=oops"),
		"bad chaos":       fleetArgs("-chaos", "crashr=-1"),
		"unknown chaos":   fleetArgs("-chaos", "crasher=1"),
		"negative shed":   fleetArgs("-shed", "-1"),
		"bad deadline":    {"-tenants", "bench=caffe,req=1,deadline=fast"},
		"retries no ddl":  {"-tenants", "bench=caffe,req=1,retries=3"},
	}
	for name, args := range cases {
		var out bytes.Buffer
		if code := fleetMain(args, &out); code == 0 {
			t.Errorf("%s: expected nonzero exit, output:\n%s", name, out.String())
		}
	}
}
