package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"itsim/internal/metrics"
)

const testTenants = "name=alpha,bench=caffe,req=3,prio=3,rate=2e5,slo=50ms;" +
	"name=beta,bench=pagerank,req=2,prio=1,rate=1e5"

func fleetArgs(extra ...string) []string {
	args := []string{
		"-machines", "2", "-slots", "2", "-scale", "0.5",
		"-tenants", testTenants,
	}
	return append(args, extra...)
}

func TestFleetMainText(t *testing.T) {
	var out bytes.Buffer
	if code := fleetMain(fleetArgs(), &out); code != 0 {
		t.Fatalf("exit code %d, output:\n%s", code, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"fleet policy=ITS routing=round-robin machines=2 slots=2",
		"5 submitted, 5 completed",
		"alpha", "beta", "p99-lat", "50.000ms",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}
	// beta has no SLO: its attainment column must render as "-".
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "beta") && !strings.HasSuffix(strings.TrimRight(line, " "), "-") {
			t.Errorf("beta row should end with '-' SLO columns: %q", line)
		}
	}
}

func TestFleetMainJSON(t *testing.T) {
	var out bytes.Buffer
	if code := fleetMain(fleetArgs("-format", "json", "-routing", "least-loaded"), &out); code != 0 {
		t.Fatalf("exit code %d, output:\n%s", code, out.String())
	}
	var s metrics.FleetSummary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("json output did not parse: %v\n%s", err, out.String())
	}
	if s.Routing != "least-loaded" || s.Machines != 2 {
		t.Errorf("summary header wrong: %+v", s)
	}
	if s.Completed != 5 || len(s.Tenants) != 2 {
		t.Errorf("expected 5 completions over 2 tenants, got %+v", s)
	}
	for _, ten := range s.Tenants {
		if ten.Latency.Count != ten.Completed {
			t.Errorf("tenant %s: latency count %d != completed %d", ten.Name, ten.Latency.Count, ten.Completed)
		}
	}
}

// TestFleetMainDeterministic pins the CLI end to end: identical seeded
// invocations must produce byte-identical JSON, the property the CI
// fleet-determinism job asserts with cmp.
func TestFleetMainDeterministic(t *testing.T) {
	args := fleetArgs("-format", "json", "-seed", "11",
		"-faults", "seed=42,tailp=0.05,tailx=4,stallp=0.01,dmap=0.02")
	var a, b bytes.Buffer
	if code := fleetMain(args, &a); code != 0 {
		t.Fatalf("first run exit %d:\n%s", code, a.String())
	}
	if code := fleetMain(args, &b); code != 0 {
		t.Fatalf("second run exit %d:\n%s", code, b.String())
	}
	if a.String() != b.String() {
		t.Errorf("same-seed fleet runs diverged:\n%s\n---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "fault_injection") {
		t.Errorf("faulty run reported no injection stats:\n%s", a.String())
	}
}

func TestFleetMainBadInput(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":    {"-no-such-flag"},
		"positional args": fleetArgs("trailing"),
		"bad tenants":     {"-tenants", "bench=nope"},
		"bad routing":     fleetArgs("-routing", "magic"),
		"bad format":      fleetArgs("-format", "xml"),
		"bad policy":      fleetArgs("-policy", "Nope"),
		"bad machines":    fleetArgs("-machines", "0"),
		"bad throttle":    fleetArgs("-prefetch-throttle", "1.5"),
		"bad faults":      fleetArgs("-faults", "tailp=oops"),
	}
	for name, args := range cases {
		var out bytes.Buffer
		if code := fleetMain(args, &out); code == 0 {
			t.Errorf("%s: expected nonzero exit, output:\n%s", name, out.String())
		}
	}
}
