package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// p returns default CLI params overridden by fn.
func p(fn func(*params)) params {
	pp := params{
		batch:       "1_Data_Intensive",
		policy:      "ITS",
		scale:       0.01,
		format:      "text",
		traceFormat: "chrome",
	}
	if fn != nil {
		fn(&pp)
	}
	return pp
}

func TestRunCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI run in -short mode")
	}
	if err := run(p(func(pp *params) { pp.verbose = true })); err != nil {
		t.Fatal(err)
	}
	if err := run(p(func(pp *params) {
		pp.batch = "No_Data_Intensive"
		pp.policy = "Sync"
		pp.dramRatio = 0.8
	})); err != nil {
		t.Fatal(err)
	}
}

func TestRunCLIJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI run in -short mode")
	}
	if err := run(p(func(pp *params) { pp.format = "json" })); err != nil {
		t.Fatal(err)
	}
}

func TestRunCLIMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI run in -short mode")
	}
	if err := run(p(func(pp *params) {
		pp.cores = 4
		pp.verbose = true
	})); err != nil {
		t.Fatal(err)
	}
	if err := run(p(func(pp *params) { pp.cores = -1 })); err == nil {
		t.Fatal("negative core count accepted")
	}
}

func TestRunCLITrace(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI run in -short mode")
	}
	dir := t.TempDir()
	chrome := filepath.Join(dir, "trace.json")
	if err := run(p(func(pp *params) {
		pp.traceOut = chrome
		pp.gaugeEvery = 50 * time.Microsecond
	})); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	jsonl := filepath.Join(dir, "trace.jsonl")
	if err := run(p(func(pp *params) {
		pp.traceOut = jsonl
		pp.traceFormat = "jsonl"
		pp.traceFilter = "MajorFaultBegin,MajorFaultEnd"
	})); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(jsonl); err != nil || st.Size() == 0 {
		t.Fatalf("jsonl trace missing or empty: %v", err)
	}
}

func TestRunCLIRejectsUnknown(t *testing.T) {
	if err := run(p(func(pp *params) { pp.batch = "nope" })); err == nil {
		t.Fatal("unknown batch accepted")
	}
	if err := run(p(func(pp *params) { pp.policy = "nope" })); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run(p(func(pp *params) { pp.format = "nope" })); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run(p(func(pp *params) {
		pp.traceOut = "x.json"
		pp.traceFormat = "nope"
	})); err == nil {
		t.Fatal("unknown trace format accepted")
	}
}
