package main

import "testing"

func TestRunCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI run in -short mode")
	}
	if err := run("1_Data_Intensive", "ITS", 0.01, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := run("No_Data_Intensive", "Sync", 0.01, 0.8, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunCLIRejectsUnknown(t *testing.T) {
	if err := run("nope", "ITS", 0.01, 0, false); err == nil {
		t.Fatal("unknown batch accepted")
	}
	if err := run("1_Data_Intensive", "nope", 0.01, 0, false); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
