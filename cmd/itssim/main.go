// Command itssim runs one process batch under one I/O-mode policy on the
// simulated platform and prints the resulting metrics.
//
// Usage:
//
//	itssim -batch 2_Data_Intensive -policy ITS -scale 0.25 [-v]
//
// Batches: No_Data_Intensive, 1_Data_Intensive, 2_Data_Intensive,
// 3_Data_Intensive. Policies: Async, Sync, Sync_Runahead, Sync_Prefetch,
// ITS.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"itsim/internal/core"
	"itsim/internal/machine"
	"itsim/internal/policy"
	"itsim/internal/workload"
)

// coreMachineConfig returns the default platform with scale-appropriate
// slices and the DRAM ratio overridden.
func coreMachineConfig(scale, dramRatio float64) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.MinSlice, cfg.MaxSlice = core.SliceRange(scale)
	cfg.DRAMRatio = dramRatio
	return cfg
}

func main() {
	var (
		batchName  = flag.String("batch", "2_Data_Intensive", "process batch name")
		policyName = flag.String("policy", "ITS", "I/O-mode policy")
		scale      = flag.Float64("scale", 0.25, "workload scale factor (1.0 = full size)")
		dramRatio  = flag.Float64("dram", 0, "override DRAM/footprint ratio (0 = default)")
		verbose    = flag.Bool("v", false, "per-process detail")
	)
	flag.Parse()

	if err := run(*batchName, *policyName, *scale, *dramRatio, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "itssim:", err)
		os.Exit(1)
	}
}

func run(batchName, policyName string, scale, dramRatio float64, verbose bool) error {
	b, err := workload.BatchByName(batchName)
	if err != nil {
		return err
	}
	kind, err := policy.KindByName(policyName)
	if err != nil {
		return err
	}
	opts := core.Options{Scale: scale}
	if dramRatio > 0 {
		cfg := coreMachineConfig(scale, dramRatio)
		opts.Machine = &cfg
	}
	run, err := core.RunBatch(b, kind, opts)
	if err != nil {
		return err
	}

	fmt.Printf("batch=%s policy=%s scale=%g\n", b.Name, kind, scale)
	fmt.Printf("  makespan          %v\n", run.Makespan)
	fmt.Printf("  total CPU idle    %v (sched idle %v)\n", run.TotalIdle(), run.SchedulerIdle)
	fmt.Printf("  major faults      %d (minor %d)\n", run.TotalMajorFaults(), run.TotalMinorFaults())
	fmt.Printf("  LLC misses        %d\n", run.TotalLLCMisses())
	fmt.Printf("  context switches  %d (time %v)\n", run.TotalContextSwitches(), run.ContextSwitchTime)
	fmt.Printf("  stolen time       %v (prefetch accuracy %.1f%%)\n", run.TotalStolen(), 100*run.PrefetchAccuracy())
	fmt.Printf("  avg finish        %v (top50 %v, bottom50 %v)\n",
		run.AvgFinish(), run.TopHalfAvgFinish(), run.BottomHalfAvgFinish())
	if run.SyncWaitHist.Count() > 0 {
		fmt.Printf("  sync waits        %s\n", run.SyncWaitHist)
	}
	if run.BlockedHist.Count() > 0 {
		fmt.Printf("  blocked waits     %s\n", run.BlockedHist)
	}

	if verbose {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  pid\tname\tprio\tfinish\tmajflt\tllc-miss\tmem-stall\tstorage-wait\tstolen\tpf-issued\tpf-useful")
		for _, p := range run.Procs {
			fmt.Fprintf(w, "  %d\t%s\t%d\t%v\t%d\t%d\t%v\t%v\t%v\t%d\t%d\n",
				p.PID, p.Name, p.Priority, p.FinishTime, p.MajorFaults, p.LLCMisses,
				p.MemStall, p.StorageWait, p.StolenPrefetch+p.StolenPreexec,
				p.PrefetchIssued, p.PrefetchUseful)
		}
		w.Flush()
	}
	return nil
}
