// Command itssim runs one process batch under one I/O-mode policy on the
// simulated platform and prints the resulting metrics.
//
// Usage:
//
//	itssim -batch 2_Data_Intensive -policy ITS -scale 0.25 [-v]
//	itssim -policy ITS -format json
//	itssim -policy ITS -cores 4
//	itssim -policy ITS -trace-out trace.json -trace-format chrome
//	itssim fleet -machines 4 -routing least-loaded -tenants 'bench=caffe,req=8'
//	itssim observe attribute trace.jsonl
//	itssim observe diff a.jsonl b.jsonl
//	itssim observe timeline -bucket 1ms trace.jsonl
//
// Batches: No_Data_Intensive, 1_Data_Intensive, 2_Data_Intensive,
// 3_Data_Intensive. Policies: Async, Sync, Sync_Runahead, Sync_Prefetch,
// ITS.
//
// With -trace-out the full simulation event stream is written as a Chrome
// trace (load in Perfetto / chrome://tracing) or JSONL; -trace-filter
// restricts it to selected event types and pids, and -gauge-interval adds
// periodic virtual-time gauge samples. See docs/OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"itsim/internal/core"
	"itsim/internal/fault"
	"itsim/internal/machine"
	"itsim/internal/obs"
	"itsim/internal/policy"
	"itsim/internal/sim"
	"itsim/internal/workload"
)

// coreMachineConfig returns the default platform with scale-appropriate
// slices and the DRAM ratio overridden.
func coreMachineConfig(scale, dramRatio float64) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.MinSlice, cfg.MaxSlice = core.SliceRange(scale)
	cfg.DRAMRatio = dramRatio
	return cfg
}

// params carries the parsed command line.
type params struct {
	batch, policy    string
	scale            float64
	dramRatio        float64
	cores            int
	verbose          bool
	format           string
	traceOut         string
	traceFormat      string
	traceFilter      string
	gaugeEvery       time.Duration
	faults           string
	spinBudget       time.Duration
	prefetchThrottle float64
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "observe" {
		os.Exit(observeMain(os.Args[2:], os.Stdout))
	}
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		os.Exit(fleetMain(os.Args[2:], os.Stdout))
	}
	var p params
	flag.StringVar(&p.batch, "batch", "2_Data_Intensive", "process batch name")
	flag.StringVar(&p.policy, "policy", "ITS", "I/O-mode policy")
	flag.Float64Var(&p.scale, "scale", 0.25, "workload scale factor (1.0 = full size)")
	flag.Float64Var(&p.dramRatio, "dram", 0, "override DRAM/footprint ratio (0 = default)")
	flag.IntVar(&p.cores, "cores", 0, "simulated core count (0/1 = single-core; >1 = SMP with work stealing)")
	flag.BoolVar(&p.verbose, "v", false, "per-process detail")
	flag.StringVar(&p.format, "format", "text", "run summary format: text|json")
	flag.StringVar(&p.traceOut, "trace-out", "", "write the simulation event trace to this file (empty = off)")
	flag.StringVar(&p.traceFormat, "trace-format", "chrome", "trace format: chrome|jsonl")
	flag.StringVar(&p.traceFilter, "trace-filter", "", "comma-separated event types and pid=N entries (empty = all)")
	flag.DurationVar(&p.gaugeEvery, "gauge-interval", 0, "virtual-time gauge sampling interval, e.g. 100us (0 = off)")
	flag.StringVar(&p.faults, "faults", "", "device fault-injection spec, e.g. 'seed=42,tailp=0.01,tailx=8,stallp=0.001,dmap=0.005' (empty = off)")
	flag.DurationVar(&p.spinBudget, "spin-budget", 0, "demote synchronous waits predicted to exceed this budget to async switches (0 = off)")
	flag.Float64Var(&p.prefetchThrottle, "prefetch-throttle", 0, "ITS skips prefetch walks when this fraction of storage channels is busy, e.g. 0.75 (0 = off)")
	flag.Parse()

	if err := run(p); err != nil {
		fmt.Fprintln(os.Stderr, "itssim:", err)
		os.Exit(1)
	}
}

func run(p params) error {
	if p.format != "text" && p.format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", p.format)
	}
	b, err := workload.BatchByName(p.batch)
	if err != nil {
		return err
	}
	kind, err := policy.KindByName(p.policy)
	if err != nil {
		return err
	}
	trc, err := obs.TracerFromFlags(p.traceOut, p.traceFormat, p.traceFilter)
	if err != nil {
		return err
	}
	faultCfg, err := fault.ParseSpec(p.faults)
	if err != nil {
		return err
	}
	if p.spinBudget < 0 {
		return fmt.Errorf("negative spin budget %v", p.spinBudget)
	}
	if p.prefetchThrottle < 0 || p.prefetchThrottle > 1 {
		return fmt.Errorf("prefetch-throttle %v outside [0,1]", p.prefetchThrottle)
	}
	opts := core.Options{
		Scale:         p.scale,
		Cores:         p.cores,
		Tracer:        trc,
		GaugeInterval: sim.Time(p.gaugeEvery.Nanoseconds()),
		Fault:         faultCfg,
		SpinBudget:    sim.Time(p.spinBudget.Nanoseconds()),
		ITS:           policy.ITSConfig{PrefetchThrottleFraction: p.prefetchThrottle},
	}
	if p.dramRatio > 0 {
		cfg := coreMachineConfig(p.scale, p.dramRatio)
		opts.Machine = &cfg
	}
	run, err := core.RunBatch(b, kind, opts)
	if cerr := trc.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("finalizing trace: %w", cerr)
	}
	if err != nil {
		return err
	}

	if p.format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(run.Summary())
	}

	fmt.Printf("batch=%s policy=%s scale=%g\n", b.Name, kind, p.scale)
	fmt.Printf("  makespan          %v\n", run.Makespan)
	fmt.Printf("  total CPU idle    %v (sched idle %v)\n", run.TotalIdle(), run.SchedulerIdle)
	fmt.Printf("  major faults      %d (minor %d)\n", run.TotalMajorFaults(), run.TotalMinorFaults())
	fmt.Printf("  LLC misses        %d\n", run.TotalLLCMisses())
	fmt.Printf("  context switches  %d (time %v)\n", run.TotalContextSwitches(), run.ContextSwitchTime)
	fmt.Printf("  stolen time       %v (prefetch accuracy %.1f%%)\n", run.TotalStolen(), 100*run.PrefetchAccuracy())
	if inj := run.Injection; inj != nil {
		fmt.Printf("  injected faults   tail=%d stall=%d dma=%d (retries %d)\n",
			inj.TailSpikes, inj.ChannelStalls, inj.DMAFailures, inj.DMARetries)
	}
	if d, th := run.TotalDemotions(), run.TotalPrefetchThrottled(); d > 0 || th > 0 {
		fmt.Printf("  degradation       demoted waits %d, throttled prefetch walks %d\n", d, th)
	}
	fmt.Printf("  avg finish        %v (top50 %v, bottom50 %v)\n",
		run.AvgFinish(), run.TopHalfAvgFinish(), run.BottomHalfAvgFinish())
	if run.SyncWaitHist.Count() > 0 {
		fmt.Printf("  sync waits        %s\n", run.SyncWaitHist)
	}
	if run.BlockedHist.Count() > 0 {
		fmt.Printf("  blocked waits     %s\n", run.BlockedHist)
	}
	if len(run.Cores) > 0 {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  core\tclock\tcpu\tidle\tswitch\tstolen\tdispatches\tsteals\tmigrated-away")
		for _, c := range run.Cores {
			fmt.Fprintf(w, "  %d\t%v\t%v\t%v\t%v\t%v\t%d\t%d\t%d\n",
				c.ID, c.LocalClock, c.CPUTime, c.SchedulerIdle, c.ContextSwitchTime,
				c.Stolen(), c.Dispatches, c.Steals, c.MigratedAway)
		}
		w.Flush()
	}

	if p.verbose {
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "  pid\tname\tprio\tfinish\tmajflt\tllc-miss\tmem-stall\tstorage-wait\tstolen\tpf-issued\tpf-useful")
		for _, p := range run.Procs {
			fmt.Fprintf(w, "  %d\t%s\t%d\t%v\t%d\t%d\t%v\t%v\t%v\t%d\t%d\n",
				p.PID, p.Name, p.Priority, p.FinishTime, p.MajorFaults, p.LLCMisses,
				p.MemStall, p.StorageWait, p.StolenPrefetch+p.StolenPreexec,
				p.PrefetchIssued, p.PrefetchUseful)
		}
		w.Flush()
	}
	return nil
}
