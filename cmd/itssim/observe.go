// The observe subcommand is the post-hoc analytics entry point over JSONL
// traces: attribution folding, run-vs-run diffing, and virtual-time
// timelines, all built on internal/replay.
//
//	itssim observe attribute [-format folded|json] [-check summary.json] trace.jsonl
//	itssim observe diff [-window 50us] a.jsonl b.jsonl
//	itssim observe timeline [-bucket 1ms] trace.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"itsim/internal/metrics"
	"itsim/internal/replay"
	"itsim/internal/sim"
)

const observeUsage = `usage: itssim observe <command> [flags] <trace.jsonl>...

commands:
  attribute   fold a trace into per-core, per-pid time attribution
              -format folded|json, -check summary.json (reconcile against
              an 'itssim -format json' summary with zero tolerance)
  diff        align two traces event-by-event; exit 0 when identical,
              1 when divergent
              -window 50us (fault-injection comparison half-width)
  timeline    bucket a trace by virtual time with sync-wait percentiles
              -bucket 1ms (bucket width)
`

// observeMain runs the observe subcommand and returns the process exit
// code: 0 success (diff: identical), 1 divergence/failed check, 2 usage or
// I/O error.
func observeMain(args []string, out io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(os.Stderr, observeUsage)
		return 2
	}
	switch args[0] {
	case "attribute":
		return observeAttribute(args[1:], out)
	case "diff":
		return observeDiff(args[1:], out)
	case "timeline":
		return observeTimeline(args[1:], out)
	default:
		fmt.Fprintf(os.Stderr, "itssim observe: unknown command %q\n%s", args[0], observeUsage)
		return 2
	}
}

// openTrace opens one trace file as a validated streaming reader.
func openTrace(path string) (*replay.Reader, func(), int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itssim observe:", err)
		return nil, nil, 2
	}
	r, err := replay.NewReader(f)
	if err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "itssim observe: %s: %v\n", path, err)
		return nil, nil, 2
	}
	return r, func() { f.Close() }, 0
}

func observeAttribute(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("observe attribute", flag.ContinueOnError)
	format := fs.String("format", "folded", "output format: folded|json")
	check := fs.String("check", "", "reconcile against this 'itssim -format json' summary (zero tolerance)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 || (*format != "folded" && *format != "json") {
		fmt.Fprint(os.Stderr, observeUsage)
		return 2
	}
	r, done, code := openTrace(fs.Arg(0))
	if code != 0 {
		return code
	}
	defer done()
	att, err := replay.Attribute(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "itssim observe:", err)
		return 2
	}

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "itssim observe:", err)
			return 2
		}
		var sum metrics.Summary
		if err := json.Unmarshal(data, &sum); err != nil {
			fmt.Fprintf(os.Stderr, "itssim observe: %s: %v\n", *check, err)
			return 2
		}
		if len(att.Runs) != 1 {
			fmt.Fprintf(os.Stderr, "itssim observe: -check wants a single-run trace, got %d runs\n", len(att.Runs))
			return 2
		}
		if err := sum.CheckAttribution(att.Runs[0].CoreAttributions()); err != nil {
			fmt.Fprintln(os.Stderr, "itssim observe: attribution does not reconcile:", err)
			return 1
		}
		fmt.Fprintf(out, "attribution reconciles with %s (zero tolerance)\n", *check)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(att); err != nil {
			fmt.Fprintln(os.Stderr, "itssim observe:", err)
			return 2
		}
	default:
		if err := att.WriteFolded(out); err != nil {
			fmt.Fprintln(os.Stderr, "itssim observe:", err)
			return 2
		}
	}
	return 0
}

func observeDiff(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("observe diff", flag.ContinueOnError)
	window := fs.Duration("window", 0, "fault-injection comparison half-width (0 = 50us default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprint(os.Stderr, observeUsage)
		return 2
	}
	ra, doneA, code := openTrace(fs.Arg(0))
	if code != 0 {
		return code
	}
	defer doneA()
	rb, doneB, code := openTrace(fs.Arg(1))
	if code != 0 {
		return code
	}
	defer doneB()
	d, err := replay.Diff(ra, rb, sim.Time(window.Nanoseconds()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "itssim observe:", err)
		return 2
	}
	if err := d.WriteText(out); err != nil {
		fmt.Fprintln(os.Stderr, "itssim observe:", err)
		return 2
	}
	if d.Identical() {
		return 0
	}
	return 1
}

func observeTimeline(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("observe timeline", flag.ContinueOnError)
	bucket := fs.Duration("bucket", 0, "bucket width (0 = 1ms default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprint(os.Stderr, observeUsage)
		return 2
	}
	r, done, code := openTrace(fs.Arg(0))
	if code != 0 {
		return code
	}
	defer done()
	tl, err := replay.BuildTimeline(r, sim.Time(bucket.Nanoseconds()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "itssim observe:", err)
		return 2
	}
	if err := tl.WriteText(out); err != nil {
		fmt.Fprintln(os.Stderr, "itssim observe:", err)
		return 2
	}
	return 0
}
