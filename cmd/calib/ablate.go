package main

import (
	"fmt"

	"itsim/internal/core"
	"itsim/internal/machine"
	"itsim/internal/policy"
	"itsim/internal/workload"
)

// ablate runs ITS variants on one batch to attribute the fault reduction.
func ablate(batchName string, scale, dram float64, degree int) {
	b, err := workload.BatchByName(batchName)
	if err != nil {
		panic(err)
	}
	cfg := machine.DefaultConfig()
	cfg.DRAMRatio = dram
	cfg.MinSlice, cfg.MaxSlice = core.SliceRange(scale)
	opts := core.Options{Scale: scale, Machine: &cfg}
	variants := []struct {
		name string
		pol  policy.Policy
	}{
		{"Sync", policy.New(policy.Sync)},
		{"ITS-full", policy.NewITS(policy.ITSConfig{PrefetchDegree: degree})},
		{"ITS-noSelfSac", policy.NewITS(policy.ITSConfig{PrefetchDegree: degree, DisableSelfSacrificing: true})},
		{"ITS-noPrefetch", policy.NewITS(policy.ITSConfig{PrefetchDegree: degree, DisablePrefetch: true})},
		{"ITS-noPreexec", policy.NewITS(policy.ITSConfig{PrefetchDegree: degree, DisablePreExecute: true})},
		{"ITS-prefetchOnly", policy.NewITS(policy.ITSConfig{PrefetchDegree: degree, DisableSelfSacrificing: true, DisablePreExecute: true})},
	}
	fmt.Printf("ablation on %s (scale=%g dram=%g degree=%d)\n", batchName, scale, dram, degree)
	for _, v := range variants {
		run, err := core.RunBatchWithPolicy(b, v.pol, opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-18s idle=%-12v faults=%-7d misses=%-8d makespan=%v\n",
			v.name, run.TotalIdle(), run.TotalMajorFaults(), run.TotalLLCMisses(), run.Makespan)
	}
}
