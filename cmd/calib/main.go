// Command calib is a development aid: it sweeps calibration knobs and
// prints the Figure 4a/4b grids compactly for comparison against the
// paper's reported bands.
package main

import (
	"flag"
	"fmt"

	"itsim/internal/core"
	"itsim/internal/machine"
	"itsim/internal/policy"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload scale")
	dram := flag.Float64("dram", 0.5, "DRAM ratio")
	degree := flag.Int("degree", 8, "ITS prefetch degree")
	ablateBatch := flag.String("ablate", "", "run ITS ablation on this batch instead of the grid")
	flag.Parse()

	if *ablateBatch != "" {
		ablate(*ablateBatch, *scale, *dram, *degree)
		return
	}

	cfg := machine.DefaultConfig()
	cfg.DRAMRatio = *dram
	cfg.MinSlice, cfg.MaxSlice = core.SliceRange(*scale)
	opts := core.Options{
		Scale:   *scale,
		Machine: &cfg,
		ITS:     policy.ITSConfig{PrefetchDegree: *degree},
	}
	grid, err := core.RunGrid(opts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scale=%g dram=%g degree=%d\n", *scale, *dram, *degree)
	fmt.Println("fig4a (norm idle)      | fig4b faults/100k      | fig5a top50 | fig5b bot50")
	for _, gr := range grid {
		n := gr.Normalized(core.MetricIdle, policy.ITS)
		t := gr.Normalized(core.MetricTopFinish, policy.ITS)
		b := gr.Normalized(core.MetricBottomFinish, policy.ITS)
		fmt.Printf("%-18s A=%.2f S=%.2f R=%.2f P=%.2f |", gr.Batch.Name[:9],
			n[policy.Async], n[policy.Sync], n[policy.SyncRunahead], n[policy.SyncPrefetch])
		for _, k := range policy.Kinds() {
			fmt.Printf(" %5.2f", float64(gr.Runs[k].TotalMajorFaults())/100000)
		}
		fmt.Printf(" | A=%.2f S=%.2f R=%.2f P=%.2f", t[policy.Async], t[policy.Sync], t[policy.SyncRunahead], t[policy.SyncPrefetch])
		fmt.Printf(" | A=%.2f S=%.2f R=%.2f P=%.2f\n", b[policy.Async], b[policy.Sync], b[policy.SyncRunahead], b[policy.SyncPrefetch])
	}
}
